package inspect

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"text/tabwriter"
	"time"

	"sws/internal/shmem"
	"sws/internal/trace"
)

// WriteText renders the full post-mortem report: journal inventory,
// dead-rank findings, per-phase latency, the slowest spans with their
// merged initiator+victim trees, the victim heatmap, and starvation.
func (r *Report) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "flight post-mortem: %d journal(s), %d PEs, %d events, %d spans\n",
		len(r.Dumps), r.NumPEs, len(r.Timeline), len(r.Spans))
	for _, d := range r.Dumps {
		who := fmt.Sprintf("rank %d", d.Rank)
		if d.Rank < 0 {
			who = "supervisor"
		}
		fmt.Fprintf(w, "  %-10s %5d events, %4d dropped  reason: %s\n", who, len(d.Events), d.Dropped, d.Reason)
	}
	if r.Dropped > 0 {
		fmt.Fprintf(w, "  (%d ring slots overwritten or torn across all journals)\n", r.Dropped)
	}

	fmt.Fprintln(w)
	if len(r.Dead) == 0 {
		fmt.Fprintln(w, "dead ranks: none observed")
	} else {
		fmt.Fprintf(w, "dead ranks: %v\n", r.DeadRanks())
		for _, d := range r.Dead {
			obs := fmt.Sprintf("rank %d's failure detector", d.Observer)
			if d.Supervisor() {
				obs = "supervisor kill journal"
			}
			fmt.Fprintf(w, "  rank %d declared dead at +%v by %s\n", d.Rank, d.At.Round(time.Microsecond), obs)
		}
	}

	if len(r.Membership) > 0 {
		fmt.Fprintf(w, "\nmembership churn: ranks %v\n", r.ChurnedRanks())
		for _, m := range r.Membership {
			fmt.Fprintf(w, "  rank %d %s completed at +%v (epoch %d), observed by rank %d\n",
				m.Rank, m.Kind(), m.At.Round(time.Microsecond), m.Epoch, m.Observer)
		}
	}

	if ps := r.PhaseStats(); len(ps) > 0 {
		fmt.Fprintln(w, "\nsteal latency by phase (initiator side):")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  phase\tcount\tmin\tmean\tp95\tmax")
		for _, p := range ps {
			fmt.Fprintf(tw, "  %s\t%d\t%v\t%v\t%v\t%v\n",
				p.Phase, p.Count, p.Min, p.Mean, p.P95, p.Max)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	top := r.TopSpans
	if top <= 0 {
		top = 5
	}
	if slow := r.SlowestSpans(top); len(slow) > 0 {
		fmt.Fprintln(w, "\nslowest steal spans:")
		for _, s := range slow {
			r.writeSpanTree(w, s)
		}
	}

	if hm := r.VictimHeatmap(); hm != nil {
		fmt.Fprintln(w, "\nvictim heatmap (rows: thief, cols: victim, cells: attempts):")
		tw := tabwriter.NewWriter(w, 2, 4, 1, ' ', tabwriter.AlignRight)
		fmt.Fprint(tw, "  \t")
		for v := 0; v < r.NumPEs; v++ {
			fmt.Fprintf(tw, "v%d\t", v)
		}
		fmt.Fprintln(tw)
		for i, row := range hm {
			fmt.Fprintf(tw, "  t%d\t", i)
			for _, c := range row {
				fmt.Fprintf(tw, "%d\t", c)
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if st := r.Starvation(); len(st) > 0 {
		fmt.Fprintln(w, "\nstarvation / steal productivity:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  pe\tattempts\tstolen\tempty\terrors\tidle-depth-samples")
		for _, s := range st {
			idle := "-"
			if s.Samples > 0 {
				idle = fmt.Sprintf("%d/%d", s.IdleSamples, s.Samples)
			}
			fmt.Fprintf(tw, "  %d\t%d\t%d\t%d\t%d\t%s\n",
				s.PE, s.Attempts, s.Stolen, s.Empty, s.Errors, idle)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// writeSpanTree renders one span as a merged initiator+victim tree.
func (r *Report) writeSpanTree(w io.Writer, s *Span) {
	fmt.Fprintf(w, "  span %#x: PE %d -> PE %d, %v, %s\n",
		s.ID, s.Initiator, s.Victim, s.Duration().Round(time.Nanosecond), s.OutcomeString())
	// Interleave both sides by time so the causal order reads top-down.
	type line struct {
		at   time.Duration
		text string
	}
	var lines []line
	for _, op := range s.Ops {
		lines = append(lines, line{op.At, fmt.Sprintf("├─ [initiator %d] %-10s %-12v rtt=%v", op.PE, op.Phase, op.Op, op.Dur)})
	}
	for _, op := range s.VictimOps {
		lines = append(lines, line{op.At, fmt.Sprintf("│    └─ [victim %d] %-10s %-12v applied", op.PE, op.Phase, op.Op)})
	}
	for i := 1; i < len(lines); i++ {
		for j := i; j > 0 && lines[j].at < lines[j-1].at; j-- {
			lines[j], lines[j-1] = lines[j-1], lines[j]
		}
	}
	for _, l := range lines {
		fmt.Fprintf(w, "    %s  (+%v)\n", l.text, (l.at - s.Start).Round(time.Nanosecond))
	}
}

// perfettoEvent is one Chrome Trace Event (the subset Perfetto needs).
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func usAt(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func hexSpan(id uint64) string { return "0x" + strconv.FormatUint(id, 16) }

// WritePerfetto exports the merged timeline as Chrome Trace Event JSON
// (loadable in ui.perfetto.dev): one track per PE, steal spans as
// slices enclosing their per-phase sub-op slices, victim applies as
// instants on the victim's track, flow arrows joining the two sides.
func (r *Report) WritePerfetto(w io.Writer) error {
	var evs []perfettoEvent
	for pe := 0; pe < r.NumPEs; pe++ {
		evs = append(evs, perfettoEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: pe,
			Args: map[string]any{"name": fmt.Sprintf("PE %d", pe)},
		})
	}
	evs = append(evs, perfettoEvent{
		Name: "thread_name", Ph: "M", Pid: 0, Tid: r.NumPEs,
		Args: map[string]any{"name": "supervisor"},
	})
	for _, s := range r.Spans {
		sid := hexSpan(s.ID)
		if s.HasStart && s.HasEnd {
			evs = append(evs, perfettoEvent{
				Name: "steal " + s.OutcomeString(), Cat: "steal", Ph: "X",
				Ts: usAt(s.Start), Dur: usAt(s.End - s.Start),
				Pid: 0, Tid: s.Initiator, ID: sid,
				Args: map[string]any{"span": sid, "victim": s.Victim, "outcome": s.OutcomeString()},
			})
		}
		for _, op := range s.Ops {
			// The journal records completion time; the slice starts one
			// round-trip earlier.
			start := op.At - op.Dur
			if start < 0 {
				start = 0
			}
			evs = append(evs, perfettoEvent{
				Name: op.Phase, Cat: "steal-op", Ph: "X",
				Ts: usAt(start), Dur: usAt(op.Dur),
				Pid: 0, Tid: op.PE,
				Args: map[string]any{"span": sid, "op": op.Op.String()},
			})
		}
		for i, op := range s.VictimOps {
			evs = append(evs, perfettoEvent{
				Name: op.Phase + " @victim", Cat: "steal-victim", Ph: "i",
				Ts: usAt(op.At), Pid: 0, Tid: op.PE,
				Args: map[string]any{"span": sid, "op": op.Op.String()},
			})
			if i == 0 && s.HasStart {
				// One flow arrow per span: initiator start -> first
				// victim-side apply.
				evs = append(evs, perfettoEvent{
					Name: "span", Cat: "steal", Ph: "s", Ts: usAt(s.Start),
					Pid: 0, Tid: s.Initiator, ID: sid,
				})
				evs = append(evs, perfettoEvent{
					Name: "span", Cat: "steal", Ph: "f", Ts: usAt(op.At),
					Pid: 0, Tid: op.PE, ID: sid,
				})
			}
		}
	}
	for _, e := range r.Timeline {
		switch e.Kind {
		case trace.QueueDepth:
			evs = append(evs, perfettoEvent{
				Name: "queue-depth", Ph: "C", Ts: usAt(e.At), Pid: 0, Tid: e.PE,
				Args: map[string]any{"local": e.A, "shared": e.B},
			})
		case trace.PeerState:
			tid := e.PE
			if tid < 0 {
				tid = r.NumPEs
			}
			evs = append(evs, perfettoEvent{
				Name: fmt.Sprintf("peer %d -> %v", e.A, shmem.PeerState(e.B)), Cat: "liveness",
				Ph: "i", Ts: usAt(e.At), Pid: 0, Tid: tid,
				Args: map[string]any{"peer": e.A, "state": shmem.PeerState(e.B).String()},
			})
		case trace.EpochFlip:
			evs = append(evs, perfettoEvent{
				Name: "epoch-flip", Cat: "queue", Ph: "i", Ts: usAt(e.At), Pid: 0, Tid: e.PE,
				Args: map[string]any{"epoch": e.A, "moved": e.B},
			})
		case trace.MemberJoin:
			evs = append(evs, perfettoEvent{
				Name: fmt.Sprintf("rank %d joined", e.A), Cat: "membership",
				Ph: "i", Ts: usAt(e.At), Pid: 0, Tid: e.PE,
				Args: map[string]any{"rank": e.A, "epoch": e.B},
			})
		case trace.MemberDrain:
			evs = append(evs, perfettoEvent{
				Name: fmt.Sprintf("rank %d drained", e.A), Cat: "membership",
				Ph: "i", Ts: usAt(e.At), Pid: 0, Tid: e.PE,
				Args: map[string]any{"rank": e.A, "epoch": e.B},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ns",
	})
}

// WritePerfettoFile writes the Perfetto JSON to path.
func (r *Report) WritePerfettoFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WritePerfetto(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
