package inspect

import (
	"bytes"
	"strings"
	"testing"

	"sws/internal/core"
	"sws/internal/shmem"
	"sws/internal/task"
	"sws/internal/wsq"
)

// stealAndDump performs one real steal (rank 1 from rank 0) on the given
// transport with the flight recorder on, dumps the journals, and returns
// the merged report. This is the end-to-end check of the tentpole: a
// span ID assigned at the initiator survives the wire and the victim's
// applies come back tagged with it.
func stealAndDump(t *testing.T, kind shmem.TransportKind) *Report {
	t.Helper()
	dir := t.TempDir()
	w, err := shmem.NewWorld(shmem.Config{
		NumPEs: 2, HeapBytes: 8 << 20, Transport: kind, FlightDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *shmem.Ctx) error {
		q, err := core.NewQueue(c, core.Options{Epochs: true})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := 0; i < 64; i++ {
				if err := q.Push(task.Desc{Handle: 0, Payload: task.Args(uint64(i))}); err != nil {
					return err
				}
			}
			if _, err := q.Release(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		tasks, out, err := q.Steal(0)
		if err != nil {
			return err
		}
		if out != wsq.Stolen || len(tasks) == 0 {
			t.Errorf("%v: steal outcome %v, %d tasks", kind, out, len(tasks))
		}
		if err := c.Quiet(); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DumpFlight("test dump"); err != nil {
		t.Fatal(err)
	}
	r, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSpanPropagationRoundTrip runs the same single-steal scenario on
// every transport and checks the journals merge into one span tree with
// both initiator- and victim-side events.
func TestSpanPropagationRoundTrip(t *testing.T) {
	kinds := []shmem.TransportKind{
		shmem.TransportLocal, shmem.TransportTCP, shmem.TransportSim,
	}
	if shmem.ShmSupported() {
		kinds = append(kinds, shmem.TransportShm)
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			r := stealAndDump(t, kind)
			var stolen *Span
			for _, s := range r.Spans {
				if s.HasEnd && s.Outcome > 0 {
					stolen = s
					break
				}
			}
			if stolen == nil {
				t.Fatalf("no completed successful span in %d spans", len(r.Spans))
			}
			if stolen.Initiator != 1 || stolen.Victim != 0 {
				t.Fatalf("span endpoints %d -> %d, want 1 -> 0", stolen.Initiator, stolen.Victim)
			}
			if !stolen.HasStart || stolen.Duration() <= 0 {
				t.Fatalf("span incomplete: start=%v dur=%v", stolen.HasStart, stolen.Duration())
			}
			initiatorPhases := map[string]bool{}
			for _, op := range stolen.Ops {
				if op.PE != 1 {
					t.Errorf("initiator op recorded by PE %d, want 1", op.PE)
				}
				initiatorPhases[op.Phase] = true
			}
			for _, phase := range []string{"claim", "copy"} {
				if !initiatorPhases[phase] {
					t.Errorf("initiator side missing %q phase (have %v)", phase, initiatorPhases)
				}
			}
			if len(stolen.VictimOps) == 0 {
				t.Fatal("no victim-side events carried the span ID over the wire")
			}
			victimPhases := map[string]bool{}
			for _, op := range stolen.VictimOps {
				if op.PE != 0 {
					t.Errorf("victim op recorded by PE %d, want 0", op.PE)
				}
				victimPhases[op.Phase] = true
			}
			if !victimPhases["claim"] {
				t.Errorf("victim side missing the claim apply (have %v)", victimPhases)
			}

			// The merged tree must render with both sides, and the phase
			// table must carry per-phase latencies.
			var buf bytes.Buffer
			if err := r.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, want := range []string{"[initiator 1]", "[victim 0]", "claim", "copy"} {
				if !strings.Contains(out, want) {
					t.Errorf("text report missing %q", want)
				}
			}
			found := false
			for _, p := range r.PhaseStats() {
				if p.Phase == "claim" && p.Count > 0 && p.Mean > 0 {
					found = true
				}
			}
			if !found {
				t.Error("phase stats missing a claim latency")
			}

			// And the Perfetto export must carry the span as a slice plus
			// victim instants tagged with the same hex span ID.
			var pbuf bytes.Buffer
			if err := r.WritePerfetto(&pbuf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(pbuf.String(), hexSpan(stolen.ID)) {
				t.Error("perfetto trace does not mention the span ID")
			}
		})
	}
}

// TestSpanIDsAreUntaggedForNonStealTraffic checks plain Ctx operations
// stay span-free: only steal-path traffic may carry span IDs, so the
// journals never misattribute barrier or heartbeat ops to a steal.
func TestSpanIDsAreUntaggedForNonStealTraffic(t *testing.T) {
	dir := t.TempDir()
	w, err := shmem.NewWorld(shmem.Config{
		NumPEs: 2, HeapBytes: 1 << 20, FlightDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *shmem.Ctx) error {
		addr, err := c.Alloc(8)
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			if _, err := c.FetchAdd64(0, addr, 1); err != nil {
				return err
			}
			if _, err := c.Load64(0, addr); err != nil {
				return err
			}
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DumpFlight("untagged check"); err != nil {
		t.Fatal(err)
	}
	r, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Spans) != 0 {
		t.Fatalf("plain Ctx traffic produced %d spans, want 0", len(r.Spans))
	}
	for _, e := range r.Timeline {
		if e.Span != 0 {
			t.Fatalf("untagged op carried span %#x: %v", e.Span, e)
		}
	}
}
