// Package inspect turns flight-recorder dumps into a post-mortem
// picture of a run: it merges the per-rank JSONL journals of one (or
// several) processes into a single causal timeline, reassembles steal
// attempts into span trees — initiator-side sub-operations joined with
// the victim-side applies that carried the same span ID over the wire —
// and derives the tables an engineer reaches for after a failure:
// per-phase steal latency, victim heatmaps, starvation, and which ranks
// died (and who saw them die).
package inspect

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"sws/internal/shmem"
	"sws/internal/trace"
)

// Span is one reassembled steal attempt: everything recorded under one
// span ID, on both sides of the wire.
type Span struct {
	ID        uint64
	Initiator int // recovered from the ID's high bits
	Victim    int // from the span-start event (-1 if the start was lost)
	Start     time.Duration
	End       time.Duration
	HasStart  bool
	HasEnd    bool
	// Outcome is the span-end verdict: tasks obtained if > 0, 0 = empty,
	// -1 = disabled, -2 = error (meaningless unless HasEnd).
	Outcome int64
	// Ops are the initiator-side sub-operations (probe, claim, copy,
	// ack), in timeline order; VictimOps are the victim-side applies of
	// the same wire traffic.
	Ops       []OpSample
	VictimOps []OpSample
}

// OpSample is one recorded sub-operation of a span.
type OpSample struct {
	At    time.Duration
	PE    int // recording PE (initiator for Ops, victim for VictimOps)
	Op    shmem.Op
	Phase string
	Dur   time.Duration // initiator-side round-trip; 0 for victim applies
}

// SpanInitiator recovers the initiating rank from a span ID
// ((rank+1) << 48 | seq, assigned in core.Queue.Steal).
func SpanInitiator(id uint64) int { return int(id>>48) - 1 }

// Phase names the steal-protocol phase an op code implements: the probe
// (damping read), the claim (fetch-add on the stealval), the copy (get
// or vectored get of the task block), the ack (non-blocking completion
// store), or the fused claim+copy.
func Phase(op shmem.Op) string {
	switch op {
	case shmem.OpLoad:
		return "probe"
	case shmem.OpFetchAdd:
		return "claim"
	case shmem.OpGet, shmem.OpGetV:
		return "copy"
	case shmem.OpStoreNBI:
		return "ack"
	case shmem.OpFetchAddGet:
		return "claim+copy"
	}
	return op.String()
}

// DeadRank is one rank the journals show as dead, with its witness: a
// surviving rank's failure detector, or the supervisor's kill journal
// (Observer < 0).
type DeadRank struct {
	Rank     int
	Observer int
	At       time.Duration
}

// Supervisor reports whether the observation came from the launcher's
// kill journal rather than a peer's failure detector.
func (d DeadRank) Supervisor() bool { return d.Observer < 0 }

// MemberEvent is one observed membership transition in an elastic world:
// a rank joining or draining, stamped with the membership epoch the
// observer held when it saw the transition complete.
type MemberEvent struct {
	Rank     int
	Observer int // rank whose journal recorded the transition
	Join     bool
	Epoch    uint64
	At       time.Duration
}

// Kind renders the transition direction.
func (m MemberEvent) Kind() string {
	if m.Join {
		return "join"
	}
	return "drain"
}

// Report is the merged post-mortem view of one dump directory.
type Report struct {
	Dumps    []trace.FlightDump
	NumPEs   int
	Timeline []trace.Event // all ranks, wall-aligned, oldest first
	Spans    []*Span       // by start time (unstarted spans last)
	Dead     []DeadRank
	// Membership lists observed join/drain transitions (elastic worlds),
	// one entry per (rank, direction, observer), earliest observation
	// kept, ordered by time.
	Membership []MemberEvent
	// Dropped totals overwritten ring slots plus unparseable journal
	// lines across all dumps.
	Dropped uint64
	// TopSpans caps the slow-span detail in WriteText (0 = default 5).
	TopSpans int
}

// LoadDir reads every flight journal in dir (flight-*.jsonl — per-rank
// dumps and the supervisor's kill journal alike) and builds the report.
func LoadDir(dir string) (*Report, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "flight-*.jsonl"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("inspect: no flight-*.jsonl journals in %s", dir)
	}
	sort.Strings(paths)
	dumps := make([]trace.FlightDump, 0, len(paths))
	for _, p := range paths {
		d, err := trace.ReadFlightDumpFile(p)
		if err != nil {
			return nil, err
		}
		dumps = append(dumps, d)
	}
	return Build(dumps), nil
}

// Build assembles a report from already-parsed dumps.
func Build(dumps []trace.FlightDump) *Report {
	r := &Report{Dumps: dumps, Timeline: trace.MergeFlightDumps(dumps)}
	for _, d := range dumps {
		if d.NumPEs > r.NumPEs {
			r.NumPEs = d.NumPEs
		}
		r.Dropped += d.Dropped
	}
	byID := make(map[uint64]*Span)
	span := func(id uint64) *Span {
		s, ok := byID[id]
		if !ok {
			s = &Span{ID: id, Initiator: SpanInitiator(id), Victim: -1}
			byID[id] = s
			r.Spans = append(r.Spans, s)
		}
		return s
	}
	for _, e := range r.Timeline {
		switch e.Kind {
		case trace.StealSpanStart:
			s := span(e.Span)
			s.Start, s.HasStart = e.At, true
			s.Victim = int(e.A)
		case trace.StealSpanEnd:
			s := span(e.Span)
			s.End, s.HasEnd = e.At, true
			s.Outcome = e.B
			if s.Victim < 0 {
				s.Victim = int(e.A)
			}
		case trace.CommOp:
			if e.Span == 0 {
				continue
			}
			op := shmem.Op(e.A)
			span(e.Span).Ops = append(span(e.Span).Ops, OpSample{
				At: e.At, PE: e.PE, Op: op, Phase: Phase(op), Dur: time.Duration(e.B),
			})
		case trace.VictimOp:
			op := shmem.Op(e.A)
			s := span(e.Span)
			s.VictimOps = append(s.VictimOps, OpSample{
				At: e.At, PE: e.PE, Op: op, Phase: Phase(op),
			})
			if s.Victim < 0 {
				s.Victim = e.PE
			}
		case trace.PeerState:
			if shmem.PeerState(e.B) == shmem.PeerDead {
				r.noteDead(int(e.A), e.PE, e.At)
			}
		case trace.MemberJoin:
			r.noteMember(int(e.A), e.PE, true, uint64(e.B), e.At)
		case trace.MemberDrain:
			r.noteMember(int(e.A), e.PE, false, uint64(e.B), e.At)
		}
	}
	sort.SliceStable(r.Spans, func(i, j int) bool {
		si, sj := r.Spans[i], r.Spans[j]
		if si.HasStart != sj.HasStart {
			return si.HasStart
		}
		if si.Start != sj.Start {
			return si.Start < sj.Start
		}
		return si.ID < sj.ID
	})
	sort.Slice(r.Dead, func(i, j int) bool {
		if r.Dead[i].Rank != r.Dead[j].Rank {
			return r.Dead[i].Rank < r.Dead[j].Rank
		}
		return r.Dead[i].Observer < r.Dead[j].Observer
	})
	sort.SliceStable(r.Membership, func(i, j int) bool {
		return r.Membership[i].At < r.Membership[j].At
	})
	return r
}

// noteDead records a death observation, keeping one entry per
// (rank, observer) pair (the earliest).
func (r *Report) noteDead(rank, observer int, at time.Duration) {
	for _, d := range r.Dead {
		if d.Rank == rank && d.Observer == observer {
			return
		}
	}
	r.Dead = append(r.Dead, DeadRank{Rank: rank, Observer: observer, At: at})
}

// noteMember records a membership-transition observation, keeping one
// entry per (rank, direction, observer) — the earliest, since the same
// observer journals each epoch refresh only once but distinct observers
// see the transition at different local times.
func (r *Report) noteMember(rank, observer int, join bool, epoch uint64, at time.Duration) {
	for _, m := range r.Membership {
		if m.Rank == rank && m.Observer == observer && m.Join == join {
			return
		}
	}
	r.Membership = append(r.Membership, MemberEvent{Rank: rank, Observer: observer, Join: join, Epoch: epoch, At: at})
}

// ChurnedRanks returns the distinct ranks that joined or drained,
// ascending.
func (r *Report) ChurnedRanks() []int {
	seen := map[int]bool{}
	var out []int
	for _, m := range r.Membership {
		if !seen[m.Rank] {
			seen[m.Rank] = true
			out = append(out, m.Rank)
		}
	}
	sort.Ints(out)
	return out
}

// DeadRanks returns the distinct dead ranks, ascending.
func (r *Report) DeadRanks() []int {
	seen := map[int]bool{}
	var out []int
	for _, d := range r.Dead {
		if !seen[d.Rank] {
			seen[d.Rank] = true
			out = append(out, d.Rank)
		}
	}
	sort.Ints(out)
	return out
}

// Duration returns a completed span's initiator-side wall time.
func (s *Span) Duration() time.Duration {
	if !s.HasStart || !s.HasEnd {
		return 0
	}
	return s.End - s.Start
}

// OutcomeString renders the span-end verdict.
func (s *Span) OutcomeString() string {
	switch {
	case !s.HasEnd:
		return "lost"
	case s.Outcome > 0:
		return fmt.Sprintf("stolen(%d)", s.Outcome)
	case s.Outcome == 0:
		return "empty"
	case s.Outcome == -1:
		return "disabled"
	default:
		return "error"
	}
}

// PhaseStat aggregates initiator-side latency for one protocol phase.
type PhaseStat struct {
	Phase string
	Count int
	Min   time.Duration
	Mean  time.Duration
	P95   time.Duration
	Max   time.Duration
}

// phaseOrder fixes the table row order to the protocol's op order.
var phaseOrder = []string{"probe", "claim", "claim+copy", "copy", "ack"}

// PhaseStats aggregates per-phase latency across every span.
func (r *Report) PhaseStats() []PhaseStat {
	samples := map[string][]time.Duration{}
	for _, s := range r.Spans {
		for _, op := range s.Ops {
			samples[op.Phase] = append(samples[op.Phase], op.Dur)
		}
	}
	var out []PhaseStat
	add := func(phase string) {
		ds := samples[phase]
		if len(ds) == 0 {
			return
		}
		delete(samples, phase)
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		p95 := ds[(len(ds)*95)/100]
		if (len(ds)*95)/100 >= len(ds) {
			p95 = ds[len(ds)-1]
		}
		out = append(out, PhaseStat{
			Phase: phase, Count: len(ds),
			Min: ds[0], Mean: sum / time.Duration(len(ds)),
			P95: p95, Max: ds[len(ds)-1],
		})
	}
	for _, p := range phaseOrder {
		add(p)
	}
	var rest []string
	for p := range samples {
		rest = append(rest, p)
	}
	sort.Strings(rest)
	for _, p := range rest {
		add(p)
	}
	return out
}

// VictimHeatmap counts steal attempts per (initiator, victim) pair;
// cell [i][v] is how many spans rank i opened against rank v.
func (r *Report) VictimHeatmap() [][]int {
	n := r.NumPEs
	if n < 1 {
		return nil
	}
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	for _, s := range r.Spans {
		if s.Initiator >= 0 && s.Initiator < n && s.Victim >= 0 && s.Victim < n {
			m[s.Initiator][s.Victim]++
		}
	}
	return m
}

// StarveStat summarizes one rank's hunt for work.
type StarveStat struct {
	PE          int
	Attempts    int // spans opened
	Stolen      int
	Empty       int
	Errors      int
	IdleSamples int // queue-depth samples with nothing runnable
	Samples     int // queue-depth samples total
}

// Starvation derives per-rank steal productivity and empty-queue
// residency from the span verdicts and queue-depth journal.
func (r *Report) Starvation() []StarveStat {
	n := r.NumPEs
	if n < 1 {
		return nil
	}
	out := make([]StarveStat, n)
	for i := range out {
		out[i].PE = i
	}
	for _, s := range r.Spans {
		if s.Initiator < 0 || s.Initiator >= n {
			continue
		}
		st := &out[s.Initiator]
		st.Attempts++
		switch {
		case !s.HasEnd || s.Outcome == -2:
			st.Errors++
		case s.Outcome > 0:
			st.Stolen++
		case s.Outcome == 0:
			st.Empty++
		}
	}
	for _, e := range r.Timeline {
		if e.Kind != trace.QueueDepth || e.PE < 0 || e.PE >= n {
			continue
		}
		out[e.PE].Samples++
		if e.A == 0 && e.B == 0 {
			out[e.PE].IdleSamples++
		}
	}
	return out
}

// SlowestSpans returns the k longest completed spans, slowest first.
func (r *Report) SlowestSpans(k int) []*Span {
	done := make([]*Span, 0, len(r.Spans))
	for _, s := range r.Spans {
		if s.HasStart && s.HasEnd {
			done = append(done, s)
		}
	}
	sort.SliceStable(done, func(i, j int) bool { return done[i].Duration() > done[j].Duration() })
	if k > 0 && len(done) > k {
		done = done[:k]
	}
	return done
}
