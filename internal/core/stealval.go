// Package core implements SWS — Structured-atomic Work Stealing — the
// primary contribution of the reproduced paper (Cartier, Dinan, Larkins,
// ICPP 2021).
//
// The central idea is that everything a thief needs in order to both
// *discover* and *claim* work — the victim queue's tail index, the number
// of tasks initially shared, a validity signal, and a count of steal
// attempts so far — fits in one 64-bit word, the "stealval", held in the
// victim's symmetric heap. A single remote atomic fetch-add on that word
// (incrementing the attempt counter in the high bits) replaces the
// baseline's lock/read/write/unlock sequence: the fetched value tells the
// thief exactly which block of tasks it now owns under the steal-half
// policy. A steal is then 3 one-sided communications (fetch-add, get,
// non-blocking completion store), only 2 of which block — versus 6 (5
// blocking) for the SDC baseline in internal/sdc.
//
// The package implements both stealval layouts from the paper —
// Figure 3's {asteals, valid, itasks, tail} and Figure 4's epoch-bearing
// variant — plus the completion-epoch machinery (§4.2) that lets the owner
// reset the queue without waiting for in-flight steals, and steal damping
// (§4.3), which probes known-empty victims with a read-only fetch.
package core

import "fmt"

// Format selects a stealval bit layout.
type Format int

const (
	// FormatV1 is Figure 3's layout: asteals:24 | valid:1 | itasks:19 |
	// tail:20. It has no epoch field, so the owner must wait for all
	// in-flight steals before resetting the queue (§4.1 behaviour).
	FormatV1 Format = iota
	// FormatV2 is Figure 4's layout: asteals:24 | epoch:2 | itasks:19 |
	// tail:19. Epoch values >= MaxEpochs mark the queue disabled,
	// subsuming V1's valid bit. This is the default.
	FormatV2
	// FormatV3 is the growable-queue layout: asteals:24 | epoch:2 |
	// class:3 | itasks:17 | tail:18. The class field names the size class
	// (capacity = base << class) of the pre-registered region the block
	// lives in, so the one fetched word still tells a thief the complete
	// victim geometry: class -> {region base address, ring capacity} is a
	// bijection over regions fixed at queue construction, and a stale
	// thief can never pair a fresh tail with an old ring size.
	FormatV3
)

func (f Format) String() string {
	switch f {
	case FormatV1:
		return "v1"
	case FormatV2:
		return "v2-epochs"
	case FormatV3:
		return "v3-growable"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// MaxEpochs is the number of concurrently draining completion epochs
// (the paper found two sufficient to avoid acquire-time polling).
const MaxEpochs = 2

const (
	// AstealsShift positions the attempted-steals counter in the top 24
	// bits of the stealval, so a thief's fetch-add of AstealsUnit can
	// never carry into owner-maintained fields.
	AstealsShift = 40
	// AstealsUnit is the fetch-add increment that claims one steal.
	AstealsUnit uint64 = 1 << AstealsShift

	astealsBits = 24
	astealsMask = 1<<astealsBits - 1

	// V1 field geometry (Figure 3).
	v1ValidShift  = 39
	v1ITasksShift = 20
	v1ITasksBits  = 19
	v1TailBits    = 20

	// V2 field geometry (Figure 4).
	v2EpochShift  = 38
	v2EpochBits   = 2
	v2ITasksShift = 19
	v2ITasksBits  = 19
	v2TailBits    = 19

	// V3 field geometry (growable queues): the epoch keeps its V2
	// position (so Disabled() is layout-compatible) and three bits are
	// carved out of itasks/tail for the size class.
	v3EpochShift  = v2EpochShift
	v3ClassShift  = 35
	v3ClassBits   = 3
	v3ITasksShift = 18
	v3ITasksBits  = 17
	v3TailBits    = 18
)

// Limits of the owner-maintained fields for each format.
const (
	MaxITasksV1 = 1<<v1ITasksBits - 1
	MaxTailV1   = 1<<v1TailBits - 1
	MaxITasksV2 = 1<<v2ITasksBits - 1
	MaxTailV2   = 1<<v2TailBits - 1
	MaxITasksV3 = 1<<v3ITasksBits - 1
	MaxTailV3   = 1<<v3TailBits - 1
	// MaxClasses bounds the size-class ladder of a growable queue: class
	// c holds capacity base<<c, so the largest queue is base<<(MaxClasses-1)
	// slots (tail width permitting).
	MaxClasses = 1 << v3ClassBits
)

// Stealval is the decoded form of the packed queue metadata word.
type Stealval struct {
	// Asteals is the number of steal attempts made against the current
	// block (incremented remotely by thieves).
	Asteals uint32
	// Valid reports whether stealing is currently enabled. For V2 it is
	// derived from the epoch field (epoch < MaxEpochs).
	Valid bool
	// Epoch is the completion epoch the block belongs to (always 0 in V1).
	Epoch int
	// Class is the size class of the ring region the block lives in
	// (always 0 in V1/V2; growable queues advertise the current class so
	// a thief derives the full victim geometry from this one word).
	Class int
	// ITasks is the number of tasks initially placed in the shared block.
	ITasks int
	// Tail is the physical slot index of the block's first task.
	Tail int
}

// maxITasks returns the largest encodable ITasks for the format.
func (f Format) maxITasks() int {
	switch f {
	case FormatV1:
		return MaxITasksV1
	case FormatV3:
		return MaxITasksV3
	default:
		return MaxITasksV2
	}
}

// maxTail returns the largest encodable tail index for the format.
func (f Format) maxTail() int {
	switch f {
	case FormatV1:
		return MaxTailV1
	case FormatV3:
		return MaxTailV3
	default:
		return MaxTailV2
	}
}

// Pack encodes v in format f. It returns an error if a field exceeds the
// format's geometry — always a queue-sizing bug, never a runtime race.
func (f Format) Pack(v Stealval) (uint64, error) {
	if v.Asteals > astealsMask {
		return 0, fmt.Errorf("core: asteals %d exceeds 24 bits", v.Asteals)
	}
	if v.ITasks < 0 || v.ITasks > f.maxITasks() {
		return 0, fmt.Errorf("core: itasks %d out of range for %v", v.ITasks, f)
	}
	if v.Tail < 0 || v.Tail > f.maxTail() {
		return 0, fmt.Errorf("core: tail %d out of range for %v", v.Tail, f)
	}
	if f != FormatV3 && v.Class != 0 {
		return 0, fmt.Errorf("core: format %v has no class field (class=%d)", f, v.Class)
	}
	w := uint64(v.Asteals) << AstealsShift
	switch f {
	case FormatV1:
		if v.Epoch != 0 {
			return 0, fmt.Errorf("core: format v1 has no epoch field (epoch=%d)", v.Epoch)
		}
		if v.Valid {
			w |= 1 << v1ValidShift
		}
		w |= uint64(v.ITasks) << v1ITasksShift
		w |= uint64(v.Tail)
	case FormatV2:
		epoch := v.Epoch
		if v.Valid {
			if epoch < 0 || epoch >= MaxEpochs {
				return 0, fmt.Errorf("core: valid epoch %d out of range [0, %d)", epoch, MaxEpochs)
			}
		} else {
			// Any epoch value >= MaxEpochs marks the queue disabled.
			epoch = disabledEpoch
		}
		w |= uint64(epoch) << v2EpochShift
		w |= uint64(v.ITasks) << v2ITasksShift
		w |= uint64(v.Tail)
	case FormatV3:
		epoch := v.Epoch
		if v.Valid {
			if epoch < 0 || epoch >= MaxEpochs {
				return 0, fmt.Errorf("core: valid epoch %d out of range [0, %d)", epoch, MaxEpochs)
			}
		} else {
			epoch = disabledEpoch
		}
		if v.Class < 0 || v.Class >= MaxClasses {
			return 0, fmt.Errorf("core: class %d out of range [0, %d)", v.Class, MaxClasses)
		}
		w |= uint64(epoch) << v3EpochShift
		w |= uint64(v.Class) << v3ClassShift
		w |= uint64(v.ITasks) << v3ITasksShift
		w |= uint64(v.Tail)
	default:
		return 0, fmt.Errorf("core: unknown format %v", f)
	}
	return w, nil
}

// disabledEpoch is the epoch value published while the queue is disabled.
const disabledEpoch = MaxEpochs

// Unpack decodes a stealval word in format f.
func (f Format) Unpack(w uint64) Stealval {
	v := Stealval{Asteals: uint32(w >> AstealsShift & astealsMask)}
	switch f {
	case FormatV1:
		v.Valid = w>>v1ValidShift&1 == 1
		v.ITasks = int(w >> v1ITasksShift & MaxITasksV1)
		v.Tail = int(w & MaxTailV1)
	case FormatV2:
		v.Epoch = int(w >> v2EpochShift & (1<<v2EpochBits - 1))
		v.Valid = v.Epoch < MaxEpochs
		v.ITasks = int(w >> v2ITasksShift & MaxITasksV2)
		v.Tail = int(w & MaxTailV2)
	case FormatV3:
		v.Epoch = int(w >> v3EpochShift & (1<<v2EpochBits - 1))
		v.Valid = v.Epoch < MaxEpochs
		v.Class = int(w >> v3ClassShift & (MaxClasses - 1))
		v.ITasks = int(w >> v3ITasksShift & MaxITasksV3)
		v.Tail = int(w & MaxTailV3)
	}
	return v
}

// Disabled returns the packed word the owner publishes to turn stealing
// off (V1: valid bit clear; V2: out-of-range epoch). Thieves that
// fetch-add a disabled word see Valid=false and abort; their stray
// asteals increments are discarded when the owner publishes a fresh word.
func (f Format) Disabled() uint64 {
	switch f {
	case FormatV1:
		return 0
	default:
		return uint64(disabledEpoch) << v2EpochShift
	}
}
