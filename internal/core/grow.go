package core

// Elastic queue machinery: the epoch-guarded reseat that moves the ring
// between pre-registered size classes, the owner-local spill arena that
// absorbs overflow past the largest class, and the published geometry
// word. See DESIGN §4.15 for the protocol and its torn-ring argument.
//
// The safety story in one paragraph: every steal claim is a fetch-add on
// the stealval, and the reseat begins with a swap to the disabled word,
// so the stealval's modification order totally orders each claim against
// the close. A claim ordered before the close was harvested by retire,
// and the owner then waits for its completion store — which the thief
// issues only after its blocking copy of the old region returned — so no
// copy is in flight when the owner republishes. A claim ordered after
// the close fetched the disabled word and aborts without copying. Either
// way a thief's copy geometry comes entirely from the one word it
// fetched (class -> immutable pre-registered region), never from owner
// state that a reseat mutates.

import (
	"fmt"
	"time"

	"sws/internal/ring"
	"sws/internal/shmem"
	"sws/internal/task"
	"sws/internal/wsq"
)

// Geom is the decoded form of the geometry word the owner publishes
// beside the stealval at construction and after every reseat. Thieves do
// not need it to steal (the stealval's class is self-sufficient); it
// exists for conformance oracles and post-mortem inspection, which want
// to compare an observed stealval against the geometry the owner last
// published.
type Geom struct {
	// Class is the size class in use; Capacity its ring's slot count.
	Class    int
	Capacity int
	// Reseats counts geometry changes (grows + shrinks), so an observer
	// can tell two published geometries apart even at equal class.
	Reseats int
}

const (
	geomClassBits   = 8
	geomReseatShift = 8
	geomReseatBits  = 24
	geomCapShift    = 32
)

// PackGeom encodes g: class in the low byte, reseat count above it,
// capacity in the high word.
func PackGeom(g Geom) uint64 {
	return uint64(g.Class)&(1<<geomClassBits-1) |
		uint64(g.Reseats)&(1<<geomReseatBits-1)<<geomReseatShift |
		uint64(g.Capacity)<<geomCapShift
}

// UnpackGeom decodes a geometry word.
func UnpackGeom(w uint64) Geom {
	return Geom{
		Class:    int(w & (1<<geomClassBits - 1)),
		Reseats:  int(w >> geomReseatShift & (1<<geomReseatBits - 1)),
		Capacity: int(w >> geomCapShift),
	}
}

// GeomAddr exposes the geometry word's heap address for conformance
// tests and diagnostics (same symmetric address on every PE).
func (q *Queue) GeomAddr() shmem.Addr { return q.geomAddr }

// CapacityNow and SpillDepth implement wsq.Elastic (owner-side reads).
func (q *Queue) CapacityNow() int { return q.curRing().Cap() }
func (q *Queue) SpillDepth() int  { return q.arena.len() }

var _ wsq.Elastic = (*Queue)(nil)

// Classes returns the number of pre-registered size classes (1 for a
// non-growable queue).
func (q *Queue) Classes() int { return len(q.regions) }

// ClassCapacity returns the ring capacity of a size class.
func (q *Queue) ClassCapacity(class int) (int, error) {
	if class < 0 || class >= len(q.regions) {
		return 0, fmt.Errorf("core: class %d out of range [0, %d)", class, len(q.regions))
	}
	return q.regions[class].ring.Cap(), nil
}

// CopyClaimedBlock performs the blocking-copy step of the steal protocol
// for a stealval the caller fetched manually (a raw fetch-add on the
// victim's StealvalAddr), without issuing the completion store.
// Conformance oracles use it to script races the normal Steal path closes
// in one motion — claim, copy, and acknowledge become three separately
// timed steps — most importantly a claim that straddles a reseat. Returns
// nil descriptors when the fetched attempt is past the block's plan.
func (q *Queue) CopyClaimedBlock(victim int, v Stealval) ([]task.Desc, error) {
	if !v.Valid {
		return nil, fmt.Errorf("core: cannot copy a block from an invalid stealval")
	}
	if v.Class >= len(q.regions) {
		return nil, fmt.Errorf("core: stealval names class %d, ladder has %d", v.Class, len(q.regions))
	}
	k := q.policy.Block(v.ITasks, int(v.Asteals))
	if k == 0 {
		return nil, nil
	}
	start := uint64(v.Tail) + uint64(q.policy.Offset(v.ITasks, int(v.Asteals)))
	return q.copyBlock(victim, v.Class, start, k, q.ctx.WithSpan(q.nextSpan()))
}

// publishGeom stores the current geometry word (owner-side local store).
func (q *Queue) publishGeom() error {
	w := PackGeom(Geom{
		Class:    q.cls,
		Capacity: q.curRing().Cap(),
		Reseats:  int(q.grows + q.shrinks),
	})
	return q.ctx.Store64(q.ctx.Rank(), q.geomAddr, w)
}

// reseat moves the queue into size class newCls: close the epoch (swap
// the stealval to disabled), wait for every in-flight steal block to
// drain (the PR 5 force-close path covers dead thieves), copy the live
// tasks into the new class's region rebased to position zero, publish
// the new geometry, and reopen with the unclaimed remainder
// re-advertised. Owner-side only; bounded by ResetPoll like any other
// epoch wait.
func (q *Queue) reseat(newCls int) error {
	start := time.Now()
	unclaimed, err := q.retire()
	if err != nil {
		return err
	}
	// Wait-for-all: any claim that beat the disabling swap must land its
	// completion store (issued after its blocking copy finished) before
	// the ring moves. waitParityFree(-1) reuses the force-close path, so
	// a dead thief's missing store cannot wedge the reseat.
	if err := q.waitParityFree(-1); err != nil {
		return err
	}
	if q.rtail != q.stail || len(q.recs) != 0 {
		return fmt.Errorf("core: reseat after drain finds rtail %d, stail %d, %d epoch records",
			q.rtail, q.stail, len(q.recs))
	}
	live := ring.Distance(q.stail, q.head)
	if c := q.regions[newCls].ring.Cap(); live > c {
		return fmt.Errorf("core: reseat to class %d (%d slots) with %d live tasks", newCls, c, live)
	}
	if err := q.copyRegion(newCls, live); err != nil {
		return err
	}
	// Rebase the logical positions so the new ring starts at zero:
	// [0, split) is the unclaimed shared remainder, [split, head) local.
	q.split = uint64(ring.Distance(q.stail, q.split))
	q.head = uint64(live)
	q.rtail, q.stail = 0, 0
	if newCls > q.cls {
		q.grows++
	} else {
		q.shrinks++
	}
	q.cls = newCls
	if err := q.publishGeom(); err != nil {
		return err
	}
	if err := q.startEpoch(unclaimed); err != nil {
		return err
	}
	q.growLat.Record(time.Since(start))
	return nil
}

// copyRegion copies the live window [stail, stail+live) of the current
// ring into the first live slots of newCls's region, in chunks through a
// bounded staging buffer (both regions live in this PE's own heap).
func (q *Queue) copyRegion(newCls, live int) error {
	if live == 0 {
		return nil
	}
	slotSize := q.codec.SlotSize()
	src, dst := q.regions[q.cls], q.regions[newCls]
	spans, n, err := src.ring.Spans(q.stail, live)
	if err != nil {
		return err
	}
	const chunk = 64 << 10
	bufSize := live * slotSize
	if bufSize > chunk {
		bufSize = chunk
	}
	buf := make([]byte, bufSize)
	me := q.ctx.Rank()
	dstOff := 0
	for i := 0; i < n; i++ {
		srcOff := spans[i].Start * slotSize
		remain := spans[i].Count * slotSize
		for remain > 0 {
			c := remain
			if c > len(buf) {
				c = len(buf)
			}
			if err := q.ctx.Get(me, src.addr+shmem.Addr(srcOff), buf[:c]); err != nil {
				return err
			}
			if err := q.ctx.Put(me, dst.addr+shmem.Addr(dstOff), buf[:c]); err != nil {
				return err
			}
			srcOff += c
			dstOff += c
			remain -= c
		}
	}
	return nil
}

// spill encodes d into the side arena. Only reachable on growable queues
// whose largest region is full (and, by the LIFO invariant, while any
// earlier spill remains).
func (q *Queue) spill(d task.Desc) error {
	if err := q.codec.Encode(q.scratch, d); err != nil {
		return err
	}
	q.arena.pushNewest(q.scratch)
	q.spilled++
	return nil
}

// unspill refills the ring from the arena, oldest spill first. All ring
// tasks predate all arena tasks, so appending the arena's oldest at the
// ring head preserves global LIFO order; it also returns parked work to
// where remote thieves can reach it once the owner releases.
func (q *Queue) unspill() error {
	for q.arena.len() > 0 {
		if q.free() == 0 {
			if err := q.Progress(); err != nil {
				return err
			}
			if q.free() == 0 {
				return nil // still full; try again next scheduler pass
			}
		}
		buf, ok := q.arena.peekOldest()
		if !ok {
			return nil
		}
		if err := q.ctx.Put(q.ctx.Rank(), q.slotAddr(q.head), buf); err != nil {
			return err
		}
		q.head++
		q.arena.dropOldest()
		q.unspilled++
	}
	return nil
}

// maybeShrink folds the ring back to the next-smaller class when
// occupancy has collapsed. It fires only when the advertised block is
// empty and no older epoch is draining, which makes the reseat's
// wait-for-all vacuous: a shrink never blocks the owner. The quarter-of-
// target threshold leaves a 4x hysteresis band against regrow thrash.
func (q *Queue) maybeShrink() error {
	if q.cls == 0 || q.arena.len() > 0 || len(q.recs) != 1 {
		return nil
	}
	if cur := q.cur(); cur.retired() || cur.itasks != 0 {
		return nil
	}
	if ring.Distance(q.rtail, q.head) > q.regions[q.cls-1].ring.Cap()/4 {
		return nil
	}
	return q.reseat(q.cls - 1)
}

// spillArena is the owner-local overflow store: fixed-size blocks of
// encoded task slots, a deque so the owner pops newest (LIFO execution)
// while unspill drains oldest (order-preserving refill).
type spillArena struct {
	slotSize   int
	blockSlots int
	blocks     []*spillBlock // oldest first
	total      int
	spare      *spillBlock // one retired block kept to damp alloc churn
}

type spillBlock struct {
	buf    []byte
	lo, hi int // live slots are [lo, hi)
}

func (a *spillArena) init(slotSize, blockSlots int) {
	a.slotSize = slotSize
	a.blockSlots = blockSlots
}

func (a *spillArena) len() int { return a.total }

func (a *spillArena) pushNewest(src []byte) {
	var b *spillBlock
	if n := len(a.blocks); n > 0 && a.blocks[n-1].hi < a.blockSlots {
		b = a.blocks[n-1]
	} else {
		if b = a.spare; b != nil {
			a.spare = nil
			b.lo, b.hi = 0, 0
		} else {
			b = &spillBlock{buf: make([]byte, a.blockSlots*a.slotSize)}
		}
		a.blocks = append(a.blocks, b)
	}
	copy(b.buf[b.hi*a.slotSize:(b.hi+1)*a.slotSize], src)
	b.hi++
	a.total++
}

// popNewest returns a view of the newest slot, valid until the next
// arena operation.
func (a *spillArena) popNewest() ([]byte, bool) {
	n := len(a.blocks)
	if n == 0 {
		return nil, false
	}
	b := a.blocks[n-1]
	b.hi--
	a.total--
	out := b.buf[b.hi*a.slotSize : (b.hi+1)*a.slotSize]
	if b.hi == b.lo {
		a.blocks = a.blocks[:n-1]
		a.spare = b
	}
	return out, true
}

// peekOldest returns a view of the oldest slot without removing it.
func (a *spillArena) peekOldest() ([]byte, bool) {
	if len(a.blocks) == 0 {
		return nil, false
	}
	b := a.blocks[0]
	return b.buf[b.lo*a.slotSize : (b.lo+1)*a.slotSize], true
}

func (a *spillArena) dropOldest() {
	if len(a.blocks) == 0 {
		return
	}
	b := a.blocks[0]
	b.lo++
	a.total--
	if b.lo == b.hi {
		a.blocks = a.blocks[1:]
		a.spare = b
	}
}
