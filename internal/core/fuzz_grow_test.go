package core

import (
	"testing"
)

// FuzzGrowShrinkSpill decodes a queue geometry and a lockstep op schedule
// from the fuzz input and drives them through the model harness: byte 0-2
// pick the starting capacity, ladder height, and spill-block size; byte 3
// selects fused steals and seeds the harness; every later byte becomes
// one schedule step (odd = thief steal, even = owner op, biased toward
// Push so small rings are forced through grow, spill, and shrink). The
// harness's reference model then checks exactly-once delivery and a fully
// drained arena, so the mutator is free to hunt for op orders that tear
// the reseat or lose a spilled task.
func FuzzGrowShrinkSpill(f *testing.F) {
	// A push flood into a 4-slot ring (grow + spill), then steals and a
	// drain; a mixed schedule; a shrink-heavy schedule.
	f.Add([]byte{0, 2, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 2, 10, 2, 10})
	f.Add([]byte{1, 1, 3, 1, 0, 4, 1, 0, 8, 1, 12, 0, 1, 2, 0, 10, 1, 4, 0, 1, 8})
	f.Add([]byte{2, 3, 5, 2, 0, 0, 0, 0, 0, 0, 10, 10, 10, 10, 12, 12, 12, 1, 1, 14, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			t.Skip()
		}
		opts := Options{
			Epochs:     true,
			Capacity:   4 << (data[0] % 3), // 4, 8, 16
			MaxGrowth:  1 + int(data[1]%3), // 1..3
			SpillBlock: 2 + int(data[2]%7), // 2..8
			Growable:   true,
			Fused:      data[3]&1 == 1,
		}
		steps := data[4:]
		if len(steps) > 400 {
			steps = steps[:400]
		}
		schedule := make([]modelStep, 0, len(steps))
		for _, b := range steps {
			if b&1 == 1 {
				schedule = append(schedule, modelStep{1, opSteal})
				continue
			}
			// Owner turn: map half the byte space to Push so the ring
			// actually climbs its ladder; the rest spread over the
			// remaining owner ops.
			if v := (b >> 1) % 8; v < 4 {
				schedule = append(schedule, modelStep{0, opPush})
			} else {
				schedule = append(schedule, modelStep{0, modelOp(v - 3)}) // opPop..opProgress
			}
		}
		st, err := runModelScheduleSteps(t, opts, int64(data[3]), schedule)
		if err != nil {
			t.Fatalf("opts %+v, %d steps: %v", opts, len(schedule), err)
		}
		if st.SpillDepth != 0 {
			t.Fatalf("drained run left %d tasks in the spill arena (stats %+v)", st.SpillDepth, st)
		}
	})
}
