package core

import (
	"fmt"
	"testing"

	"sws/internal/shmem"
	"sws/internal/wsq"
)

func fusedOptions() Options {
	return Options{Epochs: true, Damping: true, Fused: true}
}

// A fused steal is exactly 2 communications, 1 blocking: the claim and
// the task copy collapse into one round trip (the Portals-style ablation
// beyond the paper's 3/2).
func TestFusedStealCommunicationCount(t *testing.T) {
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, fusedOptions())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := uint64(0); i < 20; i++ {
				if err := q.Push(desc(i)); err != nil {
					return err
				}
			}
			if _, err := q.Release(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		before := c.Counters().Snapshot()
		tasks, out, err := q.Steal(0)
		if err != nil {
			return err
		}
		d := c.Counters().Snapshot().Sub(before)
		if out != wsq.Stolen || len(tasks) != 5 {
			return fmt.Errorf("steal: out=%v n=%d", out, len(tasks))
		}
		if d.Total() != 2 || d.Blocking() != 1 {
			return fmt.Errorf("fused steal used %d comms (%d blocking): %v", d.Total(), d.Blocking(), d)
		}
		if d.Of(shmem.OpFetchAddGet) != 1 || d.Of(shmem.OpStoreNBI) != 1 {
			return fmt.Errorf("fused op mix wrong: %v", d)
		}
		// An empty discovery is still a single communication.
		for out == wsq.Stolen {
			_, out, err = q.Steal(0)
			if err != nil {
				return err
			}
		}
		before = c.Counters().Snapshot()
		if _, out, err = q.Steal(0); err != nil || out != wsq.Empty {
			return fmt.Errorf("empty: out=%v err=%v", out, err)
		}
		d = c.Counters().Snapshot().Sub(before)
		if d.Total() != 1 || d.Of(shmem.OpFetchAddGet) != 1 {
			return fmt.Errorf("fused empty discovery used %v", d)
		}
		return c.Barrier()
	})
}

// The fused path must deliver the same steal-half schedule and contents.
func TestFusedStealSequence(t *testing.T) {
	const total = 150
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, fusedOptions())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := uint64(0); i < 2*total; i++ {
				if err := q.Push(desc(i)); err != nil {
					return err
				}
			}
			if n, err := q.Release(); err != nil || n != total {
				return fmt.Errorf("release: n=%d err=%v", n, err)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		want := []int{75, 37, 19, 9, 5, 2, 1, 1, 1}
		seen := make(map[uint64]bool)
		for i, w := range want {
			tasks, out, err := q.Steal(0)
			if err != nil {
				return fmt.Errorf("steal %d: %w", i, err)
			}
			if out != wsq.Stolen || len(tasks) != w {
				return fmt.Errorf("steal %d: out=%v len=%d want %d", i, out, len(tasks), w)
			}
			for _, d := range tasks {
				id := descID(t, d)
				if seen[id] || id >= total {
					return fmt.Errorf("bad or duplicate task %d", id)
				}
				seen[id] = true
			}
		}
		return c.Barrier()
	})
}

// Wrapped fused steals: the handler returns two spans and the server
// concatenates them; contents must survive.
func TestFusedWrappedSteals(t *testing.T) {
	const rounds = 30
	const batch = 12
	runWorld(t, 2, func(c *shmem.Ctx) error {
		opts := fusedOptions()
		opts.Capacity = 16
		q, err := NewQueue(c, opts)
		if err != nil {
			return err
		}
		var next uint64
		if c.Rank() == 0 {
			for r := 0; r < rounds; r++ {
				for i := 0; i < batch; i++ {
					if err := q.Push(desc(next)); err != nil {
						return err
					}
					next++
				}
				if _, err := q.Release(); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				for {
					if _, ok, err := q.Pop(); err != nil {
						return err
					} else if !ok {
						if n, err := q.Acquire(); err != nil {
							return err
						} else if n == 0 {
							break
						}
					}
				}
				if err := q.Progress(); err != nil {
					return err
				}
			}
			return nil
		}
		seen := make(map[uint64]bool)
		for r := 0; r < rounds; r++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			for s := 0; s < 2; s++ {
				tasks, out, err := q.Steal(0)
				if err != nil {
					return err
				}
				if out == wsq.Stolen {
					for _, d := range tasks {
						id := descID(t, d)
						if seen[id] {
							return fmt.Errorf("round %d: task %d stolen twice", r, id)
						}
						seen[id] = true
					}
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		if len(seen) == 0 {
			return fmt.Errorf("nothing stolen")
		}
		return nil
	})
}

// Fused steals over the TCP transport exercise the wire encoding of the
// combined response.
func TestFusedStealTCP(t *testing.T) {
	w, err := shmem.NewWorld(shmem.Config{NumPEs: 2, HeapBytes: 4 << 20, Transport: shmem.TransportTCP})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *shmem.Ctx) error {
		q, err := NewQueue(c, fusedOptions())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := uint64(0); i < 16; i++ {
				if err := q.Push(desc(i)); err != nil {
					return err
				}
			}
			if _, err := q.Release(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		tasks, out, err := q.Steal(0)
		if err != nil {
			return err
		}
		if out != wsq.Stolen || len(tasks) != 4 {
			return fmt.Errorf("tcp fused steal: out=%v n=%d", out, len(tasks))
		}
		for i, d := range tasks {
			if got := descID(t, d); got != uint64(i) {
				return fmt.Errorf("task %d has id %d", i, got)
			}
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
