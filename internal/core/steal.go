package core

import (
	"fmt"

	"sws/internal/shmem"
	"sws/internal/task"
	"sws/internal/trace"
	"sws/internal/wsq"
)

// Steal attempts to steal a block of tasks from victim's queue using the
// structured-atomic protocol (§4.1):
//
//  1. One remote atomic fetch-add increments the asteals field of the
//     victim's stealval. The fetched prior value both *discovers* the work
//     (tail, itasks, epoch, validity) and *claims* a specific block: no
//     other thief can obtain the same asteals value.
//  2. One blocking get copies the claimed block — a single vectored get
//     (GetV) when the block wraps the circular buffer, so wrapping costs
//     no extra round trip.
//  3. One non-blocking atomic store writes the block size into the
//     victim's completion array slot for this epoch and attempt, signalling
//     that the copy is done. The thief does not wait for it.
//
// With steal damping enabled (§4.3), victims that previously advertised an
// exhausted block are first probed with a read-only atomic fetch; the
// fetch-add path resumes only once the probe shows fresh work, bounding
// asteals growth on empty queues.
func (q *Queue) Steal(victim int) ([]task.Desc, wsq.Outcome, error) {
	if victim == q.ctx.Rank() {
		return nil, wsq.Empty, fmt.Errorf("core: PE %d cannot steal from itself", victim)
	}
	if victim < 0 || victim >= q.ctx.NumPEs() {
		return nil, wsq.Empty, fmt.Errorf("core: victim %d out of range [0, %d)", victim, q.ctx.NumPEs())
	}
	// Every attempt gets a fresh causal span: the sub-operations below
	// (probe, claim, copy, ack) all carry it on the wire, so the victim's
	// flight journal files its half of the protocol under the same ID and
	// post-mortem tooling can reassemble the full span tree.
	span := q.nextSpan()
	q.ctx.RecordSpanEvent(trace.StealSpanStart, int64(victim), 0, span)
	tasks, out, err := q.stealSpanned(victim, q.ctx.WithSpan(span))
	outcome := int64(len(tasks))
	switch {
	case err != nil:
		outcome = -2
	case out == wsq.Disabled:
		outcome = -1
	}
	q.ctx.RecordSpanEvent(trace.StealSpanEnd, int64(victim), outcome, span)
	return tasks, out, err
}

// nextSpan returns a fresh span ID for one steal attempt. IDs are
// deterministic per thief — (rank+1)<<48 | sequence — so the initiator is
// recoverable from the high bits, IDs never collide across ranks, and a
// span is never zero (zero marks untagged traffic).
func (q *Queue) nextSpan() uint64 {
	q.spanSeq++
	return uint64(q.ctx.Rank()+1)<<48 | (q.spanSeq & (1<<48 - 1))
}

// stealSpanned is the steal protocol body; every remote operation goes
// through the span-tagged view.
func (q *Queue) stealSpanned(victim int, sc shmem.SpanCtx) ([]task.Desc, wsq.Outcome, error) {
	if q.opts.Damping && q.emptyMode[victim] {
		w, err := sc.Load64(victim, q.stealvalAddr)
		if err != nil {
			return nil, wsq.Empty, err
		}
		v := q.format.Unpack(w)
		if !v.Valid {
			return nil, wsq.Disabled, nil
		}
		if int(v.Asteals) >= q.policy.PlanLen(v.ITasks) {
			// Still exhausted: abort after the single read-only probe.
			return nil, wsq.Empty, nil
		}
		// Fresh work appeared: back to full-mode and steal for real.
		q.emptyMode[victim] = false
	}

	var old uint64
	var fusedData []byte
	var err error
	if q.opts.Fused {
		// Single round trip: claim and copy together (see Options.Fused).
		old, fusedData, err = sc.FetchAddGet(victim, q.stealvalAddr, AstealsUnit, uint64(q.stealvalAddr))
	} else {
		old, err = sc.FetchAdd64(victim, q.stealvalAddr, AstealsUnit)
	}
	if err != nil {
		return nil, wsq.Empty, err
	}
	v := q.format.Unpack(old)
	if !v.Valid {
		return nil, wsq.Disabled, nil
	}
	if v.Class >= len(q.regions) {
		// A class beyond the ladder cannot come from a well-formed owner
		// (options are symmetric); treat it as corruption, not emptiness.
		return nil, wsq.Empty, fmt.Errorf("core: stealval from PE %d names class %d, ladder has %d",
			victim, v.Class, len(q.regions))
	}
	plan := q.policy.PlanLen(v.ITasks)
	if int(v.Asteals) >= plan {
		if q.opts.Damping && v.Asteals >= uint32(plan)+q.opts.DampThreshold {
			q.emptyMode[victim] = true
		}
		return nil, wsq.Empty, nil
	}

	// The fetched value fully determines the claimed block.
	k := q.policy.Block(v.ITasks, int(v.Asteals))
	off := q.policy.Offset(v.ITasks, int(v.Asteals))
	start := uint64(v.Tail) + uint64(off)

	var tasks []task.Desc
	if q.opts.Fused {
		tasks, err = q.decodeBlock(victim, fusedData, k)
	} else {
		tasks, err = q.copyBlock(victim, v.Class, start, k, sc)
	}
	if err != nil {
		return nil, wsq.Empty, err
	}

	// Completion notification: passive, non-blocking (§4.1–4.2). The slot
	// is addressed by the *epoch in the fetched stealval*, so a
	// notification landing after the owner has reset the queue still files
	// against the right epoch's array.
	slot := q.completionSlotAddr(v.Epoch, int(v.Asteals))
	if err := sc.Store64NBI(victim, slot, uint64(k)); err != nil {
		return nil, wsq.Empty, err
	}
	return tasks, wsq.Stolen, nil
}

// decodeBlock parses the task slots a fused steal brought back.
func (q *Queue) decodeBlock(victim int, data []byte, k int) ([]task.Desc, error) {
	slotSize := q.codec.SlotSize()
	if len(data) != k*slotSize {
		return nil, fmt.Errorf("core: fused steal from PE %d returned %d bytes, want %d (k=%d)",
			victim, len(data), k*slotSize, k)
	}
	tasks := make([]task.Desc, k)
	for i := range tasks {
		d, err := q.codec.Decode(data[i*slotSize:])
		if err != nil {
			return nil, fmt.Errorf("core: fused slot %d from PE %d: %w", i, victim, err)
		}
		tasks[i] = d
	}
	return tasks, nil
}

// copyBlock performs the blocking one-sided copy of k task slots starting
// at logical slot position start on the victim, unwrapping the circular
// buffer as needed (wrapping is computed locally: queues are symmetric, so
// no extra communication is required — §4, example point 1). The region
// holding the block comes from the class in the fetched stealval, never
// from this queue's own cls: regions are immutable and symmetric, so a
// fetched class resolves the victim's geometry with no extra round trip
// even if the victim reseats concurrently.
func (q *Queue) copyBlock(victim, class int, start uint64, k int, sc shmem.SpanCtx) ([]task.Desc, error) {
	reg := q.regions[class]
	slotSize := q.codec.SlotSize()
	if cap(q.stealBuf) < k*slotSize {
		q.stealBuf = make([]byte, k*slotSize)
	}
	buf := q.stealBuf[:k*slotSize]
	spans, n, err := reg.ring.Spans(start, k)
	if err != nil {
		return nil, err
	}
	if n == 1 {
		sp := spans[0]
		addr := reg.addr + shmem.Addr(sp.Start*slotSize)
		if err := sc.Get(victim, addr, buf); err != nil {
			return nil, err
		}
	} else {
		for i := 0; i < n; i++ {
			q.stealSpans[i] = shmem.Span{
				Addr: reg.addr + shmem.Addr(spans[i].Start*slotSize),
				N:    spans[i].Count * slotSize,
			}
		}
		if err := sc.GetV(victim, q.stealSpans[:n], buf); err != nil {
			return nil, err
		}
	}
	tasks := make([]task.Desc, k)
	for i := range tasks {
		d, err := q.codec.Decode(buf[i*slotSize:])
		if err != nil {
			return nil, fmt.Errorf("core: stolen slot %d from PE %d: %w", i, victim, err)
		}
		tasks[i] = d
	}
	return tasks, nil
}

// Probe reads the victim's stealval without claiming anything and reports
// the unclaimed task count it advertises (0 if disabled or exhausted).
// One read-only communication; used by damping and by diagnostics.
func (q *Queue) Probe(victim int) (int, error) {
	w, err := q.ctx.Load64(victim, q.stealvalAddr)
	if err != nil {
		return 0, err
	}
	v := q.format.Unpack(w)
	if !v.Valid {
		return 0, nil
	}
	return v.ITasks - q.policy.Offset(v.ITasks, q.clampAttempts(v)), nil
}

// EmptyMode reports whether damping currently has the victim in
// empty-mode (probe-first stealing).
func (q *Queue) EmptyMode(victim int) bool { return q.emptyMode[victim] }
