package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"sws/internal/shmem"
	"sws/internal/task"
	"sws/internal/wsq"
)

// Owner-only elastic behaviour: a tiny growable ring walks the whole
// ladder under push pressure, spills past the top class, and hands every
// task back in exact LIFO order across the arena/ring boundary.
func TestGrowOnPushLIFOAcrossSpill(t *testing.T) {
	w, err := shmem.NewWorld(shmem.Config{NumPEs: 1, HeapBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	if err := w.Run(func(c *shmem.Ctx) error {
		q, err := NewQueue(c, Options{Capacity: 8, Epochs: true, Growable: true, MaxGrowth: 2, SpillBlock: 4})
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			if err := q.Push(task.Desc{Handle: 1, Payload: task.Args(i)}); err != nil {
				t.Fatalf("push %d: %v", i, err)
			}
		}
		st := q.Stats()
		if st.Grows != 2 || st.Class != 2 || st.Capacity != 32 {
			t.Fatalf("after %d pushes: grows %d, class %d, capacity %d; want 2/2/32", n, st.Grows, st.Class, st.Capacity)
		}
		if st.Spilled == 0 || st.SpillDepth == 0 {
			t.Fatalf("ladder topped out at 32 slots yet nothing spilled: %+v", st)
		}
		if got := q.LocalCount(); got != n {
			t.Fatalf("LocalCount %d, want %d", got, n)
		}
		for i := n - 1; i >= 0; i-- {
			d, ok, err := q.Pop()
			if err != nil || !ok {
				t.Fatalf("pop expecting id %d: ok=%v err=%v", i, ok, err)
			}
			args, err := task.ParseArgs(d.Payload, 1)
			if err != nil {
				t.Fatal(err)
			}
			if args[0] != uint64(i) {
				t.Fatalf("LIFO order broken at spill boundary: popped %d, want %d", args[0], i)
			}
		}
		if st := q.Stats(); st.SpillDepth != 0 {
			t.Fatalf("drained queue still parks %d tasks", st.SpillDepth)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// A drained oversized ring folds back down one class per Release, and the
// published geometry word tracks every reseat.
func TestShrinkAfterDrain(t *testing.T) {
	w, err := shmem.NewWorld(shmem.Config{NumPEs: 1, HeapBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c *shmem.Ctx) error {
		q, err := NewQueue(c, Options{Capacity: 8, Epochs: true, Growable: true, MaxGrowth: 2})
		if err != nil {
			return err
		}
		for i := uint64(0); i < 32; i++ {
			if err := q.Push(task.Desc{Handle: 1, Payload: task.Args(i)}); err != nil {
				return err
			}
		}
		if st := q.Stats(); st.Class != 2 {
			t.Fatalf("class %d after 32 pushes, want 2", st.Class)
		}
		for i := 0; i < 32; i++ {
			if _, ok, err := q.Pop(); err != nil || !ok {
				t.Fatalf("pop %d: ok=%v err=%v", i, ok, err)
			}
		}
		// Each Release performs at most one shrink step; two steps fold
		// 32 -> 16 -> 8.
		for i := 0; i < 4; i++ {
			if _, err := q.Release(); err != nil {
				return err
			}
		}
		st := q.Stats()
		if st.Shrinks != 2 || st.Class != 0 || st.Capacity != 8 {
			t.Fatalf("after drain: shrinks %d, class %d, capacity %d; want 2/0/8", st.Shrinks, st.Class, st.Capacity)
		}
		w, err := c.Load64(c.Rank(), q.GeomAddr())
		if err != nil {
			return err
		}
		g := UnpackGeom(w)
		if g.Class != 0 || g.Capacity != 8 || g.Reseats != 4 {
			t.Fatalf("published geometry %+v, want class 0, capacity 8, 4 reseats", g)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGeomRoundTrip(t *testing.T) {
	for _, g := range []Geom{{}, {Class: 7, Capacity: 8192 << 7, Reseats: 1<<24 - 1}, {Class: 3, Capacity: 64, Reseats: 9}} {
		if got := UnpackGeom(PackGeom(g)); got != g {
			t.Fatalf("geometry word round trip: packed %+v, unpacked %+v", g, got)
		}
	}
}

// The non-growable full error must name capacity and rank (satellite
// bugfix) while staying matchable with errors.Is.
func TestErrFullNamesCapacityAndRank(t *testing.T) {
	w, err := shmem.NewWorld(shmem.Config{NumPEs: 1, HeapBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c *shmem.Ctx) error {
		q, err := NewQueue(c, Options{Capacity: 4, Epochs: true})
		if err != nil {
			return err
		}
		var full error
		for i := uint64(0); i < 8; i++ {
			if err := q.Push(task.Desc{Handle: 1, Payload: task.Args(i)}); err != nil {
				full = err
				break
			}
		}
		if full == nil {
			t.Fatal("capacity-4 queue accepted 8 pushes")
		}
		if !errors.Is(full, ErrFull) {
			t.Fatalf("full error %v does not match ErrFull", full)
		}
		for _, want := range []string{"capacity 4", "rank 0"} {
			if !strings.Contains(full.Error(), want) {
				t.Fatalf("full error %q does not name %q", full, want)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// Scripted stale-claim race: a thief claims a block and withholds its
// completion store while the owner is forced into a reseat. The reseat
// must wait for the store (the claim's copy targets the old region), and
// a post-reseat steal must see the new class in the fetched word. Every
// task is still obtained exactly once.
func TestReseatWaitsForStaleClaim(t *testing.T) {
	w, err := shmem.NewWorld(shmem.Config{NumPEs: 2, HeapBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Capacity: 8, Epochs: true, Growable: true, MaxGrowth: 1}

	claimed := make(chan struct{})      // thief -> owner: claim is in flight
	stolen := make(chan []uint64, 2)    // thief -> owner: ids it obtained
	reseated := make(chan time.Time, 1) // owner -> thief: reseat finished

	if err := w.Run(func(c *shmem.Ctx) error {
		q, err := NewQueue(c, opts)
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		const pushed = 16 // > capacity 8, forcing one reseat to class 1
		switch c.Rank() {
		case 0:
			for i := uint64(0); i < 6; i++ {
				if err := q.Push(task.Desc{Handle: 1, Payload: task.Args(i)}); err != nil {
					return err
				}
			}
			moved, err := q.Release()
			if err != nil {
				return err
			}
			if moved != 3 {
				t.Fatalf("release shared %d tasks, want 3", moved)
			}
			<-claimed
			// Ring holds 6 with capacity 8; pushing through 16 total forces
			// the grow, whose drain must block on the withheld store.
			for i := uint64(6); i < pushed; i++ {
				if err := q.Push(task.Desc{Handle: 1, Payload: task.Args(i)}); err != nil {
					return err
				}
			}
			st := q.Stats()
			if st.Grows != 1 || st.Class != 1 {
				t.Fatalf("owner after push storm: grows %d, class %d; want 1/1", st.Grows, st.Class)
			}
			reseated <- time.Now()
			// Let the thief take one post-reseat steal, then recover the rest.
			got := map[uint64]bool{}
			deadline := time.Now().Add(10 * time.Second)
			for {
				var thiefGot int
				for _, ids := range drainChan(stolen) {
					for _, id := range ids {
						if got[id] {
							t.Fatalf("task %d obtained twice", id)
						}
						got[id] = true
					}
					thiefGot++
				}
				d, ok, err := q.Pop()
				if err != nil {
					return err
				}
				if ok {
					args, err := task.ParseArgs(d.Payload, 1)
					if err != nil {
						return err
					}
					if got[args[0]] {
						t.Fatalf("task %d obtained twice (pop)", args[0])
					}
					got[args[0]] = true
					continue
				}
				if _, err := q.Acquire(); err != nil {
					return err
				}
				if err := q.Progress(); err != nil {
					return err
				}
				if q.LocalCount() == 0 && q.SharedAvail() == 0 {
					// Wait for any remaining thief report before concluding.
					if len(got) == pushed {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("obtained %d of %d tasks before deadline", len(got), pushed)
					}
					select {
					case ids := <-stolen:
						for _, id := range ids {
							if got[id] {
								t.Fatalf("task %d obtained twice", id)
							}
							got[id] = true
						}
					case <-time.After(time.Millisecond):
					}
				}
			}
		case 1:
			// Manual claim, exactly as Steal would issue it, with the
			// completion store withheld.
			old, err := c.FetchAdd64(0, q.StealvalAddr(), AstealsUnit)
			if err != nil {
				return err
			}
			v := q.format.Unpack(old)
			if !v.Valid || v.Class != 0 || v.ITasks != 3 {
				t.Fatalf("thief fetched %+v, want valid class-0 block of 3", v)
			}
			k := q.policy.Block(v.ITasks, int(v.Asteals))
			off := q.policy.Offset(v.ITasks, int(v.Asteals))
			close(claimed)
			// The owner is now pushing toward a reseat that must wait for
			// us. Copy the block from the OLD region the fetched class
			// names — this is the window a torn ring would corrupt.
			time.Sleep(20 * time.Millisecond)
			reg := q.regions[v.Class]
			slotSize := q.codec.SlotSize()
			buf := make([]byte, k*slotSize)
			spans, n, err := reg.ring.Spans(uint64(v.Tail)+uint64(off), k)
			if err != nil {
				return err
			}
			o := 0
			for i := 0; i < n; i++ {
				nb := spans[i].Count * slotSize
				if err := c.Get(0, reg.addr+shmem.Addr(spans[i].Start*slotSize), buf[o:o+nb]); err != nil {
					return err
				}
				o += nb
			}
			var ids []uint64
			for i := 0; i < k; i++ {
				d, err := q.codec.Decode(buf[i*slotSize:])
				if err != nil {
					return err
				}
				args, err := task.ParseArgs(d.Payload, 1)
				if err != nil {
					return err
				}
				ids = append(ids, args[0])
			}
			stolen <- ids
			if err := c.Store64(0, q.CompletionSlotAddr(v.Epoch, int(v.Asteals)), uint64(k)); err != nil {
				return err
			}
			<-reseated
			// Post-reseat steal through the real protocol: the fetched word
			// must now carry the new class.
			for i := 0; i < 200; i++ {
				tasks, out, err := q.Steal(0)
				if err != nil {
					return err
				}
				if out == wsq.Stolen {
					var ids []uint64
					for _, d := range tasks {
						args, err := task.ParseArgs(d.Payload, 1)
						if err != nil {
							return err
						}
						ids = append(ids, args[0])
					}
					stolen <- ids
					if err := c.Quiet(); err != nil {
						return err
					}
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
		return c.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
}

// drainChan empties a buffered channel without blocking.
func drainChan(ch chan []uint64) [][]uint64 {
	var out [][]uint64
	for {
		select {
		case ids := <-ch:
			out = append(out, ids)
		default:
			return out
		}
	}
}

// Growable queues refuse configurations the protocol cannot carry.
func TestGrowableOptionValidation(t *testing.T) {
	w, err := shmem.NewWorld(shmem.Config{NumPEs: 1, HeapBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c *shmem.Ctx) error {
		if _, err := NewQueue(c, Options{Growable: true}); err == nil {
			t.Fatal("growable queue without epochs was accepted")
		}
		if _, err := NewQueue(c, Options{Epochs: true, Growable: true, MaxGrowth: MaxClasses}); err == nil {
			t.Fatalf("MaxGrowth %d was accepted (ladder has only %d classes)", MaxClasses, MaxClasses)
		}
		// Capacity << MaxGrowth must fit the V3 tail field.
		if _, err := NewQueue(c, Options{Epochs: true, Growable: true, Capacity: MaxTailV3 + 1, MaxGrowth: 1}); err == nil {
			t.Fatal("ladder exceeding the v3 tail field was accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
