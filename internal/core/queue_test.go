package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sws/internal/shmem"
	"sws/internal/task"
	"sws/internal/wsq"
)

var _ wsq.Queue = (*Queue)(nil)

// runWorld drives a body on a fresh local-transport world.
func runWorld(t *testing.T, npes int, body func(*shmem.Ctx) error) {
	t.Helper()
	w, err := shmem.NewWorld(shmem.Config{NumPEs: npes, HeapBytes: 4 << 20})
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	if err := w.Run(body); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// desc builds a small test task whose payload encodes id.
func desc(id uint64) task.Desc {
	return task.Desc{Handle: 1, Payload: task.Args(id)}
}

func descID(t *testing.T, d task.Desc) uint64 {
	t.Helper()
	args, err := task.ParseArgs(d.Payload, 1)
	if err != nil {
		t.Fatalf("bad payload: %v", err)
	}
	return args[0]
}

func TestNewQueueValidation(t *testing.T) {
	runWorld(t, 1, func(c *shmem.Ctx) error {
		if _, err := NewQueue(c, Options{Capacity: 1}); err == nil {
			return fmt.Errorf("capacity 1 accepted")
		}
		if _, err := NewQueue(c, Options{Capacity: MaxTailV2 + 2, Epochs: true}); err == nil {
			return fmt.Errorf("oversized capacity accepted for v2")
		}
		if _, err := NewQueue(c, Options{PayloadCap: -1}); err == nil {
			return fmt.Errorf("negative payload accepted")
		}
		return nil
	})
}

func TestPushPopLIFO(t *testing.T) {
	runWorld(t, 1, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, DefaultOptions())
		if err != nil {
			return err
		}
		for i := uint64(0); i < 10; i++ {
			if err := q.Push(desc(i)); err != nil {
				return err
			}
		}
		if q.LocalCount() != 10 {
			return fmt.Errorf("LocalCount = %d, want 10", q.LocalCount())
		}
		for i := 9; i >= 0; i-- {
			d, ok, err := q.Pop()
			if err != nil || !ok {
				return fmt.Errorf("pop %d: ok=%v err=%v", i, ok, err)
			}
			if got := descID(t, d); got != uint64(i) {
				return fmt.Errorf("pop order: got %d, want %d (LIFO)", got, i)
			}
		}
		if _, ok, _ := q.Pop(); ok {
			return fmt.Errorf("pop from empty queue succeeded")
		}
		return nil
	})
}

func TestReleaseExposesHalf(t *testing.T) {
	runWorld(t, 1, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, DefaultOptions())
		if err != nil {
			return err
		}
		for i := uint64(0); i < 10; i++ {
			if err := q.Push(desc(i)); err != nil {
				return err
			}
		}
		n, err := q.Release()
		if err != nil {
			return err
		}
		if n != 5 {
			return fmt.Errorf("Release exposed %d, want 5", n)
		}
		if q.LocalCount() != 5 || q.SharedAvail() != 5 {
			return fmt.Errorf("after release: local=%d shared=%d", q.LocalCount(), q.SharedAvail())
		}
		// Second release is a no-op while shared work remains.
		n, err = q.Release()
		if err != nil || n != 0 {
			return fmt.Errorf("redundant release: n=%d err=%v", n, err)
		}
		// The released tasks are the oldest (bottom of the local portion):
		// pops must return 9..5.
		for i := 9; i >= 5; i-- {
			d, ok, err := q.Pop()
			if err != nil || !ok {
				return fmt.Errorf("pop: %v", err)
			}
			if got := descID(t, d); got != uint64(i) {
				return fmt.Errorf("pop got %d, want %d", got, i)
			}
		}
		return nil
	})
}

func TestReleaseNeedsTwoTasks(t *testing.T) {
	runWorld(t, 1, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, DefaultOptions())
		if err != nil {
			return err
		}
		if err := q.Push(desc(1)); err != nil {
			return err
		}
		n, err := q.Release()
		if err != nil || n != 0 {
			return fmt.Errorf("release of single task: n=%d err=%v", n, err)
		}
		return nil
	})
}

func TestAcquireMovesHalfBack(t *testing.T) {
	runWorld(t, 1, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, DefaultOptions())
		if err != nil {
			return err
		}
		for i := uint64(0); i < 20; i++ {
			if err := q.Push(desc(i)); err != nil {
				return err
			}
		}
		if _, err := q.Release(); err != nil { // shared=10, local=10
			return err
		}
		for q.LocalCount() > 0 { // drain local
			if _, _, err := q.Pop(); err != nil {
				return err
			}
		}
		moved, err := q.Acquire()
		if err != nil {
			return err
		}
		if moved != 5 {
			return fmt.Errorf("Acquire moved %d, want 5", moved)
		}
		if q.LocalCount() != 5 || q.SharedAvail() != 5 {
			return fmt.Errorf("after acquire: local=%d shared=%d", q.LocalCount(), q.SharedAvail())
		}
		return nil
	})
}

func TestAcquireOnEmptySharedReopens(t *testing.T) {
	runWorld(t, 1, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, DefaultOptions())
		if err != nil {
			return err
		}
		moved, err := q.Acquire()
		if err != nil || moved != 0 {
			return fmt.Errorf("acquire on empty: moved=%d err=%v", moved, err)
		}
		// The queue must still be valid (steals see empty, not disabled).
		w, err := c.Load64(c.Rank(), q.stealvalAddr)
		if err != nil {
			return err
		}
		if !q.format.Unpack(w).Valid {
			return fmt.Errorf("queue left disabled after empty acquire")
		}
		return nil
	})
}

// A full steal-plan walk by one thief: steals must follow the steal-half
// sequence and carry the right task contents.
func TestStealSequenceMatchesPlan(t *testing.T) {
	const total = 150
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, DefaultOptions())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			// Expose exactly 150 tasks: push 300, release half.
			for i := uint64(0); i < 2*total; i++ {
				if err := q.Push(desc(i)); err != nil {
					return err
				}
			}
			if n, err := q.Release(); err != nil || n != total {
				return fmt.Errorf("release: n=%d err=%v", n, err)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Barrier() // wait for thief to finish
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		want := []int{75, 37, 19, 9, 5, 2, 1, 1, 1}
		seen := make(map[uint64]bool)
		for i, w := range want {
			tasks, out, err := q.Steal(0)
			if err != nil {
				return fmt.Errorf("steal %d: %w", i, err)
			}
			if out != wsq.Stolen || len(tasks) != w {
				return fmt.Errorf("steal %d: outcome=%v len=%d, want stolen %d", i, out, len(tasks), w)
			}
			for _, d := range tasks {
				id := descID(t, d)
				if id >= total {
					return fmt.Errorf("stole unexposed task %d", id)
				}
				if seen[id] {
					return fmt.Errorf("task %d stolen twice", id)
				}
				seen[id] = true
			}
		}
		if len(seen) != total {
			return fmt.Errorf("stole %d distinct tasks, want %d", len(seen), total)
		}
		// Plan exhausted: next attempt reports empty.
		_, out, err := q.Steal(0)
		if err != nil {
			return err
		}
		if out != wsq.Empty {
			return fmt.Errorf("post-exhaustion steal: %v, want empty", out)
		}
		return c.Barrier()
	})
}

// Figure 2: an SWS steal is exactly 3 communications, 2 of them blocking.
func TestStealCommunicationCount(t *testing.T) {
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, DefaultOptions())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := uint64(0); i < 20; i++ {
				if err := q.Push(desc(i)); err != nil {
					return err
				}
			}
			if _, err := q.Release(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		before := c.Counters().Snapshot()
		tasks, out, err := q.Steal(0)
		if err != nil {
			return err
		}
		d := c.Counters().Snapshot().Sub(before)
		if out != wsq.Stolen || len(tasks) == 0 {
			return fmt.Errorf("steal failed: %v", out)
		}
		if d.Total() != 3 {
			return fmt.Errorf("steal used %d comms (%v), want 3", d.Total(), d)
		}
		if d.Blocking() != 2 {
			return fmt.Errorf("steal used %d blocking comms, want 2", d.Blocking())
		}
		if d.Of(shmem.OpFetchAdd) != 1 || d.Of(shmem.OpGet) != 1 || d.Of(shmem.OpStoreNBI) != 1 {
			return fmt.Errorf("steal op mix wrong: %v", d)
		}
		return c.Barrier()
	})
}

// An empty steal attempt costs exactly one communication (the fetch-add) —
// the single-communication work-discovery test the paper credits for flat
// search times.
func TestEmptyStealIsOneComm(t *testing.T) {
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, Options{Epochs: true}) // damping off
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			before := c.Counters().Snapshot()
			_, out, err := q.Steal(0)
			if err != nil {
				return err
			}
			d := c.Counters().Snapshot().Sub(before)
			if out != wsq.Empty {
				return fmt.Errorf("outcome %v, want empty", out)
			}
			if d.Total() != 1 || d.Of(shmem.OpFetchAdd) != 1 {
				return fmt.Errorf("empty steal used %v, want 1 fetch-add", d)
			}
		}
		return c.Barrier()
	})
}

func TestStealSelfAndRangeErrors(t *testing.T) {
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, DefaultOptions())
		if err != nil {
			return err
		}
		if _, _, err := q.Steal(c.Rank()); err == nil {
			return fmt.Errorf("self-steal accepted")
		}
		if _, _, err := q.Steal(5); err == nil {
			return fmt.Errorf("out-of-range victim accepted")
		}
		return c.Barrier()
	})
}

// Steal damping: after a victim turns up empty past the threshold, the
// thief switches to read-only probes; when the victim releases new work
// the thief resumes fetch-add stealing.
func TestStealDamping(t *testing.T) {
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, Options{Epochs: true, Damping: true, DampThreshold: 2})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := c.Barrier(); err != nil { // thief hammers empty queue
				return err
			}
			if err := c.Barrier(); err != nil { // thief verified empty-mode
				return err
			}
			for i := uint64(0); i < 40; i++ {
				if err := q.Push(desc(i)); err != nil {
					return err
				}
			}
			if _, err := q.Release(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil { // work released
				return err
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Hammer the empty queue until damping kicks in.
		for i := 0; i < 10; i++ {
			if _, out, err := q.Steal(0); err != nil || out != wsq.Empty {
				return fmt.Errorf("steal %d: out=%v err=%v", i, out, err)
			}
		}
		if !q.EmptyMode(0) {
			return fmt.Errorf("victim not in empty-mode after repeated empty steals")
		}
		// In empty-mode, an attempt costs one read-only probe.
		before := c.Counters().Snapshot()
		if _, out, err := q.Steal(0); err != nil || out != wsq.Empty {
			return fmt.Errorf("probe steal: out=%v err=%v", out, err)
		}
		d := c.Counters().Snapshot().Sub(before)
		if d.Total() != 1 || d.Of(shmem.OpLoad) != 1 {
			return fmt.Errorf("empty-mode attempt used %v, want 1 atomic-fetch", d)
		}
		if err := c.Barrier(); err != nil { // signal owner to release work
			return err
		}
		if err := c.Barrier(); err != nil { // owner released
			return err
		}
		// Probe sees fresh work, flips back to full-mode, steals for real.
		tasks, out, err := q.Steal(0)
		if err != nil {
			return err
		}
		if out != wsq.Stolen || len(tasks) != 10 {
			return fmt.Errorf("post-release steal: out=%v n=%d, want stolen 10", out, len(tasks))
		}
		if q.EmptyMode(0) {
			return fmt.Errorf("victim still in empty-mode after successful steal")
		}
		return c.Barrier()
	})
}

// A disabled queue (owner mid-reset) must yield Disabled, and the stray
// asteals increment must not corrupt the queue.
func TestStealFromDisabledQueue(t *testing.T) {
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, DefaultOptions())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := uint64(0); i < 10; i++ {
				if err := q.Push(desc(i)); err != nil {
					return err
				}
			}
			if _, err := q.Release(); err != nil {
				return err
			}
			// Simulate the mid-reset window: disable the stealval exactly
			// as retire() does.
			if _, err := c.Swap64(c.Rank(), q.stealvalAddr, q.format.Disabled()); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil { // thief probed disabled queue
				return err
			}
			// Re-publish; the thief's stray increment must have vanished.
			if err := q.publish(5, q.stail); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		_, out, err := q.Steal(0)
		if err != nil {
			return err
		}
		if out != wsq.Disabled {
			return fmt.Errorf("steal from disabled queue: %v", out)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil { // owner re-published
			return err
		}
		tasks, out, err := q.Steal(0)
		if err != nil {
			return err
		}
		if out != wsq.Stolen || len(tasks) != 2 {
			return fmt.Errorf("steal after re-publish: out=%v n=%d want stolen 2", out, len(tasks))
		}
		return c.Barrier()
	})
}

func TestQueueFull(t *testing.T) {
	runWorld(t, 1, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, Options{Capacity: 8, Epochs: true})
		if err != nil {
			return err
		}
		for i := uint64(0); i < 8; i++ {
			if err := q.Push(desc(i)); err != nil {
				return err
			}
		}
		if err := q.Push(desc(99)); !errors.Is(err, ErrFull) {
			return fmt.Errorf("push into full queue: %v, want ErrFull", err)
		}
		// Draining one task frees a slot.
		if _, _, err := q.Pop(); err != nil {
			return err
		}
		if err := q.Push(desc(100)); err != nil {
			return err
		}
		return nil
	})
}

// Ring wrap: cycle a small queue through many produce/steal rounds so the
// physical buffer wraps repeatedly, including wrapped steals.
func TestWrappedSteals(t *testing.T) {
	const rounds = 40
	const batch = 12 // capacity 16 forces wraps quickly
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, Options{Capacity: 16, Epochs: true})
		if err != nil {
			return err
		}
		var next uint64
		if c.Rank() == 0 {
			for r := 0; r < rounds; r++ {
				for i := 0; i < batch; i++ {
					if err := q.Push(desc(next)); err != nil {
						return err
					}
					next++
				}
				if _, err := q.Release(); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil { // thief's turn
					return err
				}
				if err := c.Barrier(); err != nil { // thief done
					return err
				}
				// Drain whatever is left (local + reacquired shared).
				for {
					if _, ok, err := q.Pop(); err != nil {
						return err
					} else if !ok {
						if n, err := q.Acquire(); err != nil {
							return err
						} else if n == 0 {
							break
						}
					}
				}
				if err := q.Progress(); err != nil {
					return err
				}
			}
			return nil
		}
		seen := make(map[uint64]bool)
		for r := 0; r < rounds; r++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			// Steal twice per round; blocks may wrap the ring.
			for s := 0; s < 2; s++ {
				tasks, out, err := q.Steal(0)
				if err != nil {
					return err
				}
				if out == wsq.Stolen {
					for _, d := range tasks {
						id := descID(t, d)
						if seen[id] {
							return fmt.Errorf("round %d: task %d stolen twice", r, id)
						}
						seen[id] = true
					}
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		if len(seen) == 0 {
			return fmt.Errorf("no tasks stolen across %d rounds", rounds)
		}
		return nil
	})
}

// Completion epochs: the owner must be able to reset the queue while a
// steal is still in flight, without waiting (V2), and must reclaim space
// only after the in-flight completion lands.
func TestEpochOverlapsInFlightSteal(t *testing.T) {
	fault := &shmem.DelayFaults{Fraction: 1.0, MaxDelay: 5 * time.Millisecond, Seed: 11}
	w, err := shmem.NewWorld(shmem.Config{NumPEs: 2, HeapBytes: 4 << 20, Fault: fault})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *shmem.Ctx) error {
		q, err := NewQueue(c, DefaultOptions())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := uint64(0); i < 40; i++ {
				if err := q.Push(desc(i)); err != nil {
					return err
				}
			}
			if _, err := q.Release(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil { // thief has claimed + copied
				return err
			}
			// The completion store is delayed by fault injection; with
			// epochs the owner can still retire the block and publish a
			// fresh one immediately (drain local first so acquire applies).
			for {
				if _, ok, err := q.Pop(); err != nil {
					return err
				} else if !ok {
					break
				}
			}
			moved, err := q.Acquire()
			if err != nil {
				return err
			}
			// Structural no-wait check (a wall-clock bound here flakes on
			// loaded machines): with epochs the acquire must never have
			// polled for the in-flight completion.
			if polls := q.Stats().ResetPolls; polls != 0 {
				return fmt.Errorf("acquire polled %d times on in-flight steal despite epochs", polls)
			}
			if moved == 0 {
				return fmt.Errorf("acquire moved nothing")
			}
			// Eventually the delayed completion lands and space reclaims.
			deadline := time.Now().Add(2 * time.Second)
			for {
				if err := q.Progress(); err != nil {
					return err
				}
				if len(q.recs) == 1 { // only the current epoch remains
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("delayed completion never reclaimed: %d epochs outstanding", len(q.recs))
				}
				time.Sleep(100 * time.Microsecond)
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		tasks, out, err := q.Steal(0)
		if err != nil {
			return err
		}
		if out != wsq.Stolen || len(tasks) != 10 {
			return fmt.Errorf("steal: out=%v n=%d", out, len(tasks))
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Without epochs (format V1), the same scenario forces the owner to wait
// for the in-flight completion before its reset finishes — the §4.1
// behaviour the paper's epochs remove.
func TestV1ResetWaitsForInFlight(t *testing.T) {
	const delay = 20 * time.Millisecond
	fault := &shmem.DelayFaults{Fraction: 1.0, MaxDelay: delay, Seed: 11}
	w, err := shmem.NewWorld(shmem.Config{NumPEs: 2, HeapBytes: 4 << 20, Fault: fault})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *shmem.Ctx) error {
		q, err := NewQueue(c, Options{Epochs: false})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := uint64(0); i < 40; i++ {
				if err := q.Push(desc(i)); err != nil {
					return err
				}
			}
			if _, err := q.Release(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			for {
				if _, ok, err := q.Pop(); err != nil {
					return err
				} else if !ok {
					break
				}
			}
			moved, err := q.Acquire()
			if err != nil {
				return err
			}
			if moved == 0 {
				return fmt.Errorf("acquire moved nothing")
			}
			// All draining records must be gone: V1 waited.
			if len(q.recs) != 1 {
				return fmt.Errorf("v1 acquire returned with %d records outstanding", len(q.recs))
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if _, out, err := q.Steal(0); err != nil || out != wsq.Stolen {
			return fmt.Errorf("steal: out=%v err=%v", out, err)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Concurrency stress: one producer, several thieves, no task lost or
// duplicated. This is the package's core safety invariant.
func TestConcurrentStealStress(t *testing.T) {
	const npes = 5
	const total = 3000
	var claimed [total]atomic.Bool
	var got atomic.Int64
	runWorld(t, npes, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, Options{Capacity: 1024, Epochs: true, Damping: true})
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		record := func(ts []task.Desc) error {
			for _, d := range ts {
				id := descID(t, d)
				if id >= total {
					return fmt.Errorf("bogus task id %d", id)
				}
				if claimed[id].Swap(true) {
					return fmt.Errorf("task %d obtained twice", id)
				}
				got.Add(1)
			}
			return nil
		}
		if c.Rank() == 0 {
			next := uint64(0)
			for got.Load() < total {
				// Keep the queue supplied and shared.
				for i := 0; i < 64 && next < total; i++ {
					if err := q.Push(desc(next)); err != nil {
						if errors.Is(err, ErrFull) {
							break
						}
						return err
					}
					next++
				}
				if _, err := q.Release(); err != nil {
					return err
				}
				if err := q.Progress(); err != nil {
					return err
				}
				// Consume a little locally too.
				for i := 0; i < 8; i++ {
					d, ok, err := q.Pop()
					if err != nil {
						return err
					}
					if !ok {
						if _, err := q.Acquire(); err != nil {
							return err
						}
						continue
					}
					if err := record([]task.Desc{d}); err != nil {
						return err
					}
				}
			}
			return c.Barrier()
		}
		// Thieves.
		for got.Load() < total {
			tasks, out, err := q.Steal(0)
			if err != nil {
				return err
			}
			if out == wsq.Stolen {
				if err := record(tasks); err != nil {
					return err
				}
			} else {
				time.Sleep(10 * time.Microsecond)
			}
		}
		return c.Barrier()
	})
	if got.Load() != total {
		t.Fatalf("got %d tasks, want %d", got.Load(), total)
	}
	for i := range claimed {
		if !claimed[i].Load() {
			t.Fatalf("task %d lost", i)
		}
	}
}

// The same stress with the V1 format and damping off — the baseline
// configuration of the SWS queue.
func TestConcurrentStealStressV1(t *testing.T) {
	const npes = 4
	const total = 1500
	var claimed [total]atomic.Bool
	var got atomic.Int64
	runWorld(t, npes, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, Options{Capacity: 512, Epochs: false, Damping: false})
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		record := func(ts []task.Desc) error {
			for _, d := range ts {
				id := descID(t, d)
				if claimed[id].Swap(true) {
					return fmt.Errorf("task %d obtained twice", id)
				}
				got.Add(1)
			}
			return nil
		}
		if c.Rank() == 0 {
			next := uint64(0)
			for got.Load() < total {
				for i := 0; i < 32 && next < total; i++ {
					if err := q.Push(desc(next)); err != nil {
						if errors.Is(err, ErrFull) {
							break
						}
						return err
					}
					next++
				}
				if _, err := q.Release(); err != nil {
					return err
				}
				for i := 0; i < 4; i++ {
					d, ok, err := q.Pop()
					if err != nil {
						return err
					}
					if !ok {
						if _, err := q.Acquire(); err != nil {
							return err
						}
						continue
					}
					if err := record([]task.Desc{d}); err != nil {
						return err
					}
				}
			}
			return c.Barrier()
		}
		for got.Load() < total {
			tasks, out, err := q.Steal(0)
			if err != nil {
				return err
			}
			if out == wsq.Stolen {
				if err := record(tasks); err != nil {
					return err
				}
			} else {
				time.Sleep(10 * time.Microsecond)
			}
		}
		return c.Barrier()
	})
	if got.Load() != total {
		t.Fatalf("got %d tasks, want %d", got.Load(), total)
	}
}

// Table 1's task-state lifecycle, observed through the queue's own
// bookkeeping: Available (released) -> Claimed (fetch-added) -> Finished
// (completion landed) -> Invalid (space reclaimed).
func TestTaskStateLifecycle(t *testing.T) {
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, DefaultOptions())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := uint64(0); i < 8; i++ {
				if err := q.Push(desc(i)); err != nil {
					return err
				}
			}
			// Available: released to the shared portion.
			if n, err := q.Release(); err != nil || n != 4 {
				return fmt.Errorf("release: %d, %v", n, err)
			}
			if q.SharedAvail() != 4 {
				return fmt.Errorf("avail = %d, want 4", q.SharedAvail())
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil { // thief claimed 2
				return err
			}
			// Claimed: owner's view of available shrinks to 2.
			if q.SharedAvail() != 2 {
				return fmt.Errorf("after claim avail = %d, want 2", q.SharedAvail())
			}
			// Finished: once the completion lands, progress reclaims the
			// space (rtail advances past the stolen block).
			deadline := time.Now().Add(2 * time.Second)
			for q.rtail != 2 {
				if err := q.Progress(); err != nil {
					return err
				}
				// Progress only drains *retired* epochs; retire this one
				// by acquiring after draining local work.
				if time.Now().After(deadline) {
					return fmt.Errorf("rtail = %d, want 2", q.rtail)
				}
				if q.LocalCount() == 0 {
					if _, err := q.Acquire(); err != nil {
						return err
					}
				} else if _, _, err := q.Pop(); err != nil {
					return err
				}
				time.Sleep(50 * time.Microsecond)
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		tasks, out, err := q.Steal(0)
		if err != nil || out != wsq.Stolen || len(tasks) != 2 {
			return fmt.Errorf("steal: out=%v n=%d err=%v", out, len(tasks), err)
		}
		if err := c.Quiet(); err != nil { // force the completion to land
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.Barrier()
	})
}
