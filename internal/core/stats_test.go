package core

import (
	"fmt"
	"testing"

	"sws/internal/shmem"
	"sws/internal/wsq"
)

// Owner statistics and the diagnostic Probe must reflect queue activity.
func TestOwnerStatsAndProbe(t *testing.T) {
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, DefaultOptions())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := uint64(0); i < 20; i++ {
				if err := q.Push(desc(i)); err != nil {
					return err
				}
			}
			if _, err := q.Release(); err != nil {
				return err
			}
			for q.LocalCount() > 0 {
				if _, _, err := q.Pop(); err != nil {
					return err
				}
			}
			if _, err := q.Acquire(); err != nil {
				return err
			}
			st := q.Stats()
			if st.Releases != 1 {
				return fmt.Errorf("releases = %d, want 1", st.Releases)
			}
			if st.Acquires != 1 {
				return fmt.Errorf("acquires = %d, want 1", st.Acquires)
			}
			if st.Epochs < 1 {
				return fmt.Errorf("epochs = %d", st.Epochs)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil { // owner set up: 5 shared tasks
			return err
		}
		avail, err := q.Probe(0)
		if err != nil {
			return err
		}
		if avail != 5 {
			return fmt.Errorf("probe = %d, want 5 (10 shared, 5 reacquired)", avail)
		}
		// Probing costs one read-only communication and claims nothing.
		before := c.Counters().Snapshot()
		if _, err := q.Probe(0); err != nil {
			return err
		}
		d := c.Counters().Snapshot().Sub(before)
		if d.Total() != 1 || d.Of(shmem.OpLoad) != 1 {
			return fmt.Errorf("probe comms: %v", d)
		}
		again, err := q.Probe(0)
		if err != nil {
			return err
		}
		if again != avail {
			return fmt.Errorf("probe claimed work: %d -> %d", avail, again)
		}
		return c.Barrier()
	})
}

// Format accessor must match the configured options.
func TestFormatAccessor(t *testing.T) {
	runWorld(t, 1, func(c *shmem.Ctx) error {
		q1, err := NewQueue(c, Options{Epochs: true})
		if err != nil {
			return err
		}
		if q1.Format() != FormatV2 {
			return fmt.Errorf("epochs queue format %v", q1.Format())
		}
		q2, err := NewQueue(c, Options{Epochs: false})
		if err != nil {
			return err
		}
		if q2.Format() != FormatV1 {
			return fmt.Errorf("no-epochs queue format %v", q2.Format())
		}
		return nil
	})
}

// SharedAvail must track claims as thieves work through the block.
func TestSharedAvailTracksClaims(t *testing.T) {
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, DefaultOptions())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := uint64(0); i < 32; i++ {
				if err := q.Push(desc(i)); err != nil {
					return err
				}
			}
			if _, err := q.Release(); err != nil { // 16 shared
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil { // thief claimed 8
				return err
			}
			if got := q.SharedAvail(); got != 8 {
				return fmt.Errorf("SharedAvail = %d, want 8", got)
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		tasks, out, err := q.Steal(0)
		if err != nil || out != wsq.Stolen || len(tasks) != 8 {
			return fmt.Errorf("steal: %v %d %v", out, len(tasks), err)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.Barrier()
	})
}
