package core

import (
	"testing"

	"sws/internal/wsq"
)

// FuzzStealvalRoundTrip feeds arbitrary words through Unpack->Pack and
// checks the codec's internal consistency: any word that decodes as valid
// must re-encode to a word that decodes identically (idempotence), and
// thief increments must never corrupt owner fields.
func FuzzStealvalRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1) << 63)
	f.Add(AstealsUnit)
	f.Add(^uint64(0))
	w0, _ := FormatV2.Pack(Stealval{Valid: true, Epoch: 1, ITasks: 150, Tail: 500, Asteals: 2})
	f.Add(w0)
	w1, _ := FormatV3.Pack(Stealval{Valid: true, Epoch: 1, Class: 5, ITasks: 150, Tail: 500, Asteals: 2})
	f.Add(w1)
	f.Fuzz(func(t *testing.T, w uint64) {
		for _, format := range []Format{FormatV1, FormatV2, FormatV3} {
			v := format.Unpack(w)
			if v.ITasks < 0 || v.Tail < 0 {
				t.Fatalf("%v: negative fields from %#x: %+v", format, w, v)
			}
			if v.ITasks > format.maxITasks() || v.Tail > format.maxTail() {
				t.Fatalf("%v: out-of-range fields from %#x: %+v", format, w, v)
			}
			if v.Class < 0 || v.Class >= MaxClasses {
				t.Fatalf("%v: class out of range from %#x: %+v", format, w, v)
			}
			if format != FormatV3 && v.Class != 0 {
				t.Fatalf("%v: class-less format decoded class %d from %#x", format, v.Class, w)
			}
			if format == FormatV1 {
				v.Epoch = 0 // V1 carries no epoch
			}
			if !v.Valid {
				continue // disabled words do not round-trip their fields
			}
			repacked, err := format.Pack(v)
			if err != nil {
				t.Fatalf("%v: cannot repack own decode of %#x (%+v): %v", format, w, v, err)
			}
			v2 := format.Unpack(repacked)
			if v2 != v {
				t.Fatalf("%v: unstable decode: %+v != %+v", format, v2, v)
			}
			// A thief's increment touches only asteals.
			bumped := format.Unpack(repacked + AstealsUnit)
			if bumped.ITasks != v.ITasks || bumped.Tail != v.Tail || bumped.Class != v.Class {
				t.Fatalf("%v: increment corrupted owner fields: %+v -> %+v", format, v, bumped)
			}
		}
	})
}

// FuzzStealPlan checks the plan arithmetic for arbitrary block sizes and
// attempt indexes: blocks stay within the remaining work and offsets
// telescope.
func FuzzStealPlan(f *testing.F) {
	f.Add(150, 2)
	f.Add(0, 0)
	f.Add(1, 5)
	f.Add(1<<19-1, 30)
	f.Fuzz(func(t *testing.T, n, i int) {
		if n < 0 || n > 1<<19 || i < 0 || i > 1<<20 {
			t.Skip()
		}
		for _, p := range []wsq.Policy{wsq.StealHalfPolicy, wsq.StealOnePolicy, wsq.StealAllPolicy} {
			k := p.Block(n, i)
			off := p.Offset(n, i)
			if k < 0 || off < 0 || off > n {
				t.Fatalf("%v(%d, %d): k=%d off=%d", p, n, i, k, off)
			}
			if off+k > n {
				t.Fatalf("%v(%d, %d): block [%d, %d) exceeds n", p, n, i, off, off+k)
			}
			if k > 0 && p.Offset(n, i+1) != off+k {
				t.Fatalf("%v(%d, %d): offsets do not telescope", p, n, i)
			}
		}
	})
}
