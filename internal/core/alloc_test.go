package core

import (
	"fmt"
	"testing"

	"sws/internal/shmem"
	"sws/internal/task"
	"sws/internal/wsq"
)

// TestStealAllocs pins the steal hot path's allocation budget: claim
// (fetch-add), block copy, and completion notify must not allocate beyond
// the returned task slice. The pooled wire path exists to keep this flat;
// a regression here means a per-steal allocation crept back in.
func TestStealAllocs(t *testing.T) {
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, Options{
			Capacity: 2048, PayloadCap: 16, Epochs: true, Policy: wsq.StealOnePolicy,
		})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			// Zero-length payloads so Decode's payload copy stays nil:
			// the budget below is the steal machinery's own.
			for i := 0; i < 1000; i++ {
				if err := q.Push(task.Desc{}); err != nil {
					return err
				}
			}
			if _, err := q.Release(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			// Park in the barrier (a cond wait, not a spin) while the
			// thief measures: AllocsPerRun reads global malloc counters.
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		steal := func() {
			tasks, out, err := q.Steal(0)
			if err != nil || out != wsq.Stolen || len(tasks) != 1 {
				t.Errorf("steal: out=%v n=%d err=%v", out, len(tasks), err)
			}
		}
		// Warm the reusable staging (stealBuf, NBI queue) out of band.
		for i := 0; i < 5; i++ {
			steal()
		}
		allocs := testing.AllocsPerRun(200, steal)
		if allocs > 2 {
			t.Errorf("steal hot path allocates %.1f objects/op, want <= 2", allocs)
		}
		if err := c.Quiet(); err != nil {
			return err
		}
		return c.Barrier()
	})
}

// TestWrappedStealRoundTrips asserts the paper's 3-communication steal
// bound holds even when the claimed block wraps the circular buffer: one
// blocking claim (fetch-add), ONE blocking copy (a vectored get, not two
// gets), and one non-blocking completion store — on both in-process
// transports.
func TestWrappedStealRoundTrips(t *testing.T) {
	for _, kind := range []shmem.TransportKind{shmem.TransportLocal, shmem.TransportTCP} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			w, err := shmem.NewWorld(shmem.Config{NumPEs: 2, HeapBytes: 4 << 20, Transport: kind})
			if err != nil {
				t.Fatalf("NewWorld: %v", err)
			}
			wrapped := 0
			err = w.Run(func(c *shmem.Ctx) error {
				q, err := NewQueue(c, Options{Capacity: 16, PayloadCap: 16, Epochs: true})
				if err != nil {
					return err
				}
				// 10 tasks/round: Release shares 5, so the block tail
				// advances 5 per round mod 16 and periodically lands on
				// slot 15 — where the first claimed block (2 tasks under
				// steal-half) wraps the ring.
				const rounds = 48
				for r := 0; r < rounds; r++ {
					if c.Rank() == 0 {
						for i := 0; i < 10; i++ {
							if err := q.Push(task.Desc{}); err != nil {
								return err
							}
						}
						if _, err := q.Release(); err != nil {
							return err
						}
						if err := c.Barrier(); err != nil {
							return err
						}
						if err := c.Barrier(); err != nil {
							return err
						}
						for {
							if _, ok, err := q.Pop(); err != nil {
								return err
							} else if !ok {
								break
							}
						}
						if _, err := q.Acquire(); err != nil {
							return err
						}
						if err := q.Progress(); err != nil {
							return err
						}
						continue
					}
					if err := c.Barrier(); err != nil {
						return err
					}
					for {
						before := c.Counters().Snapshot()
						tasks, out, err := q.Steal(0)
						if err != nil {
							return err
						}
						d := c.Counters().Snapshot().Sub(before)
						if out != wsq.Stolen {
							break
						}
						if len(tasks) == 0 {
							return fmt.Errorf("round %d: stolen 0 tasks", r)
						}
						if d.Of(shmem.OpFetchAdd) != 1 {
							return fmt.Errorf("round %d: %d claim fetch-adds, want 1 (%v)", r, d.Of(shmem.OpFetchAdd), d)
						}
						if gets := d.Of(shmem.OpGet) + d.Of(shmem.OpGetV); gets != 1 {
							return fmt.Errorf("round %d: %d block copies, want exactly 1 even wrapped (%v)", r, gets, d)
						}
						if d.Blocking() != 2 {
							return fmt.Errorf("round %d: %d blocking comms per steal, want 2 (%v)", r, d.Blocking(), d)
						}
						if d.NonBlocking() != 1 {
							return fmt.Errorf("round %d: %d non-blocking comms, want 1 completion store (%v)", r, d.NonBlocking(), d)
						}
						if d.Of(shmem.OpGetV) == 1 {
							wrapped++
						}
					}
					if err := c.Quiet(); err != nil {
						return err
					}
					if err := c.Barrier(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if wrapped == 0 {
				t.Fatal("no steal ever wrapped the ring: the vectored-get path went unexercised")
			}
		})
	}
}
