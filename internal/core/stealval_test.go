package core

import (
	"testing"
	"testing/quick"

	"sws/internal/wsq"
)

func TestFormatString(t *testing.T) {
	if FormatV1.String() != "v1" || FormatV2.String() != "v2-epochs" {
		t.Error("format strings wrong")
	}
	if Format(9).String() == "" {
		t.Error("unknown format string empty")
	}
}

// The paper's Figure 3 example: asteals=2, valid, itasks=150, tail=500.
func TestPackUnpackFig3Example(t *testing.T) {
	v := Stealval{Asteals: 2, Valid: true, ITasks: 150, Tail: 500}
	w, err := FormatV1.Pack(v)
	if err != nil {
		t.Fatal(err)
	}
	got := FormatV1.Unpack(w)
	if got != v {
		t.Errorf("round trip: %+v != %+v", got, v)
	}
	// The asteals field must occupy the top 24 bits.
	if w>>AstealsShift != 2 {
		t.Errorf("asteals not in high bits: %#x", w)
	}
}

func TestPackUnpackV2(t *testing.T) {
	v := Stealval{Asteals: 7, Valid: true, Epoch: 1, ITasks: 150, Tail: 500}
	w, err := FormatV2.Pack(v)
	if err != nil {
		t.Fatal(err)
	}
	got := FormatV2.Unpack(w)
	if got != v {
		t.Errorf("round trip: %+v != %+v", got, v)
	}
}

// A thief's fetch-add of AstealsUnit must increment asteals and leave
// every owner field untouched — the property the whole protocol rests on.
func TestFetchAddOnlyTouchesAsteals(t *testing.T) {
	for _, f := range []Format{FormatV1, FormatV2} {
		v := Stealval{Asteals: 0, Valid: true, ITasks: 150, Tail: 500}
		if f == FormatV2 {
			v.Epoch = 1
		}
		w, err := f.Pack(v)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 1000; i++ {
			w += AstealsUnit
			got := f.Unpack(w)
			if got.Asteals != uint32(i) {
				t.Fatalf("%v: after %d adds asteals=%d", f, i, got.Asteals)
			}
			if got.ITasks != v.ITasks || got.Tail != v.Tail || got.Valid != v.Valid || got.Epoch != v.Epoch {
				t.Fatalf("%v: owner fields corrupted after %d adds: %+v", f, i, got)
			}
		}
	}
}

// Disabled words must decode as invalid, and stray increments on a
// disabled word must keep it invalid.
func TestDisabled(t *testing.T) {
	for _, f := range []Format{FormatV1, FormatV2} {
		w := f.Disabled()
		if f.Unpack(w).Valid {
			t.Errorf("%v: Disabled() decodes as valid", f)
		}
		for i := 0; i < 100; i++ {
			w += AstealsUnit
			if f.Unpack(w).Valid {
				t.Errorf("%v: disabled word became valid after %d increments", f, i+1)
			}
		}
	}
}

func TestPackRangeErrors(t *testing.T) {
	cases := []struct {
		name string
		f    Format
		v    Stealval
	}{
		{"v1 itasks too big", FormatV1, Stealval{Valid: true, ITasks: MaxITasksV1 + 1}},
		{"v1 tail too big", FormatV1, Stealval{Valid: true, Tail: MaxTailV1 + 1}},
		{"v1 nonzero epoch", FormatV1, Stealval{Valid: true, Epoch: 1}},
		{"v2 itasks too big", FormatV2, Stealval{Valid: true, ITasks: MaxITasksV2 + 1}},
		{"v2 tail too big", FormatV2, Stealval{Valid: true, Tail: MaxTailV2 + 1}},
		{"v2 epoch too big", FormatV2, Stealval{Valid: true, Epoch: MaxEpochs}},
		{"negative itasks", FormatV2, Stealval{Valid: true, ITasks: -1}},
		{"negative tail", FormatV2, Stealval{Valid: true, Tail: -1}},
		{"asteals overflow", FormatV2, Stealval{Valid: true, Asteals: 1 << 24}},
	}
	for _, c := range cases {
		if _, err := c.f.Pack(c.v); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// Property: pack/unpack round-trips every in-range value, both formats.
func TestPackUnpackProperty(t *testing.T) {
	fV1 := func(asteals uint32, itasks uint32, tail uint32, valid bool) bool {
		v := Stealval{
			Asteals: asteals & astealsMask,
			Valid:   valid,
			ITasks:  int(itasks) & MaxITasksV1,
			Tail:    int(tail) & MaxTailV1,
		}
		if !valid {
			// V1 encodes invalid by clearing the bit; owner fields survive.
			v.ITasks, v.Tail = int(itasks)&MaxITasksV1, int(tail)&MaxTailV1
		}
		w, err := FormatV1.Pack(v)
		if err != nil {
			return false
		}
		return FormatV1.Unpack(w) == v
	}
	if err := quick.Check(fV1, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error("v1:", err)
	}
	fV2 := func(asteals uint32, itasks uint32, tail uint32, epoch uint8) bool {
		v := Stealval{
			Asteals: asteals & astealsMask,
			Valid:   true,
			Epoch:   int(epoch) % MaxEpochs,
			ITasks:  int(itasks) & MaxITasksV2,
			Tail:    int(tail) & MaxTailV2,
		}
		w, err := FormatV2.Pack(v)
		if err != nil {
			return false
		}
		return FormatV2.Unpack(w) == v
	}
	if err := quick.Check(fV2, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error("v2:", err)
	}
}

// Edge cases around the asteals field's 24-bit ceiling. Because asteals
// occupies the TOP bits of the word, saturating it and adding one more
// unit carries out of bit 63 and vanishes — the owner fields below are
// arithmetically unreachable, no matter how many thieves pile on.
func TestAstealsSaturationEdges(t *testing.T) {
	cases := []struct {
		name string
		f    Format
		v    Stealval
	}{
		{"v1 busy queue", FormatV1, Stealval{Valid: true, ITasks: 150, Tail: 500}},
		{"v1 tail at max", FormatV1, Stealval{Valid: true, ITasks: 1, Tail: MaxTailV1}},
		{"v2 epoch 1", FormatV2, Stealval{Valid: true, Epoch: 1, ITasks: 150, Tail: 500}},
		{"v2 tail at max", FormatV2, Stealval{Valid: true, Epoch: 0, ITasks: 1, Tail: MaxTailV2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w, err := c.f.Pack(c.v)
			if err != nil {
				t.Fatal(err)
			}
			// Saturate: 2^24-1 thief increments.
			sat := w + (uint64(astealsMask) << AstealsShift)
			got := c.f.Unpack(sat)
			if got.Asteals != astealsMask {
				t.Fatalf("saturated asteals = %d, want %d", got.Asteals, uint32(astealsMask))
			}
			if got.ITasks != c.v.ITasks || got.Tail != c.v.Tail || got.Valid != c.v.Valid || got.Epoch != c.v.Epoch {
				t.Fatalf("saturation leaked into owner fields: %+v", got)
			}
			// One more increment carries out of bit 63: asteals wraps to 0,
			// the low 40 bits are bit-for-bit untouched.
			over := sat + AstealsUnit
			if over&(AstealsUnit-1) != w&(AstealsUnit-1) {
				t.Fatalf("asteals overflow corrupted low bits: %#x vs %#x", over, w)
			}
			got = c.f.Unpack(over)
			if got.Asteals != 0 {
				t.Fatalf("overflowed asteals = %d, want 0", got.Asteals)
			}
			if got.ITasks != c.v.ITasks || got.Tail != c.v.Tail || got.Valid != c.v.Valid || got.Epoch != c.v.Epoch {
				t.Fatalf("overflow corrupted owner fields: %+v", got)
			}
		})
	}
}

// A valid stealval advertising zero shared tasks (nshared == 0) is the
// state every queue publishes between Release cycles. It must round-trip,
// and the steal plan for it must be empty at every attempt index — a
// thief that fetch-adds such a word finds plan exhausted immediately.
func TestZeroSharedValidWord(t *testing.T) {
	for _, f := range []Format{FormatV1, FormatV2} {
		for _, tail := range []int{0, 1, 4095} {
			v := Stealval{Valid: true, ITasks: 0, Tail: tail}
			w, err := f.Pack(v)
			if err != nil {
				t.Fatalf("%v tail=%d: %v", f, tail, err)
			}
			got := f.Unpack(w)
			if got != v {
				t.Fatalf("%v tail=%d: round trip %+v != %+v", f, tail, got, v)
			}
			if !got.Valid {
				t.Fatalf("%v: zero-itasks word decoded invalid", f)
			}
		}
	}
	if wsq.PlanLen(0) != 0 {
		t.Fatalf("PlanLen(0) = %d, want 0 (no stealable blocks in an empty set)", wsq.PlanLen(0))
	}
	for i := 0; i < 5; i++ {
		if k := wsq.StealHalf(0, i); k != 0 {
			t.Fatalf("StealHalf(0, %d) = %d, want 0", i, k)
		}
	}
}

// Tail-index wrap: the packed tail is a ring index that wraps at the
// field boundary. Words whose tail sits at the last representable index,
// and raw words with every tail bit set, must mask cleanly and never
// bleed into the adjacent itasks bits.
func TestPackedTailWrapEdges(t *testing.T) {
	type tc struct {
		name string
		f    Format
		tail int
	}
	cases := []tc{
		{"v1 max tail", FormatV1, MaxTailV1},
		{"v1 max-1", FormatV1, MaxTailV1 - 1},
		{"v2 max tail", FormatV2, MaxTailV2},
		{"v2 max-1", FormatV2, MaxTailV2 - 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v := Stealval{Valid: true, ITasks: 3, Tail: c.tail}
			w, err := c.f.Pack(v)
			if err != nil {
				t.Fatal(err)
			}
			got := c.f.Unpack(w)
			if got.Tail != c.tail {
				t.Fatalf("tail %d decoded as %d", c.tail, got.Tail)
			}
			if got.ITasks != 3 {
				t.Fatalf("max tail bled into itasks: %+v", got)
			}
			// One past the max must be rejected by Pack, not silently wrapped.
			v.Tail = c.tail + (c.f.maxTail() - c.tail) + 1
			if _, err := c.f.Pack(v); err == nil {
				t.Fatalf("Pack accepted tail %d beyond field max %d", v.Tail, c.f.maxTail())
			}
		})
	}
	// Raw words with all tail bits set decode to exactly maxTail — the
	// mask cannot produce an out-of-ring index.
	for _, f := range []Format{FormatV1, FormatV2} {
		raw := ^uint64(0)
		v := f.Unpack(raw)
		if v.Tail != f.maxTail() {
			t.Fatalf("%v: all-ones word decodes tail %d, want %d", f, v.Tail, f.maxTail())
		}
		if v.ITasks > f.maxITasks() {
			t.Fatalf("%v: all-ones word decodes itasks %d beyond max", f, v.ITasks)
		}
	}
}

// Property: fields are independent — packing two values that differ in one
// field yields words that differ only in that field's bit range.
func TestFieldIndependenceProperty(t *testing.T) {
	f := func(itasks uint32, tailA, tailB uint32) bool {
		a := Stealval{Valid: true, Epoch: 1, ITasks: int(itasks) & MaxITasksV2, Tail: int(tailA) & MaxTailV2}
		b := a
		b.Tail = int(tailB) & MaxTailV2
		wa, err1 := FormatV2.Pack(a)
		wb, err2 := FormatV2.Pack(b)
		if err1 != nil || err2 != nil {
			return false
		}
		diff := wa ^ wb
		return diff&^uint64(MaxTailV2) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
