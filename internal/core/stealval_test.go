package core

import (
	"testing"
	"testing/quick"
)

func TestFormatString(t *testing.T) {
	if FormatV1.String() != "v1" || FormatV2.String() != "v2-epochs" {
		t.Error("format strings wrong")
	}
	if Format(9).String() == "" {
		t.Error("unknown format string empty")
	}
}

// The paper's Figure 3 example: asteals=2, valid, itasks=150, tail=500.
func TestPackUnpackFig3Example(t *testing.T) {
	v := Stealval{Asteals: 2, Valid: true, ITasks: 150, Tail: 500}
	w, err := FormatV1.Pack(v)
	if err != nil {
		t.Fatal(err)
	}
	got := FormatV1.Unpack(w)
	if got != v {
		t.Errorf("round trip: %+v != %+v", got, v)
	}
	// The asteals field must occupy the top 24 bits.
	if w>>AstealsShift != 2 {
		t.Errorf("asteals not in high bits: %#x", w)
	}
}

func TestPackUnpackV2(t *testing.T) {
	v := Stealval{Asteals: 7, Valid: true, Epoch: 1, ITasks: 150, Tail: 500}
	w, err := FormatV2.Pack(v)
	if err != nil {
		t.Fatal(err)
	}
	got := FormatV2.Unpack(w)
	if got != v {
		t.Errorf("round trip: %+v != %+v", got, v)
	}
}

// A thief's fetch-add of AstealsUnit must increment asteals and leave
// every owner field untouched — the property the whole protocol rests on.
func TestFetchAddOnlyTouchesAsteals(t *testing.T) {
	for _, f := range []Format{FormatV1, FormatV2} {
		v := Stealval{Asteals: 0, Valid: true, ITasks: 150, Tail: 500}
		if f == FormatV2 {
			v.Epoch = 1
		}
		w, err := f.Pack(v)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 1000; i++ {
			w += AstealsUnit
			got := f.Unpack(w)
			if got.Asteals != uint32(i) {
				t.Fatalf("%v: after %d adds asteals=%d", f, i, got.Asteals)
			}
			if got.ITasks != v.ITasks || got.Tail != v.Tail || got.Valid != v.Valid || got.Epoch != v.Epoch {
				t.Fatalf("%v: owner fields corrupted after %d adds: %+v", f, i, got)
			}
		}
	}
}

// Disabled words must decode as invalid, and stray increments on a
// disabled word must keep it invalid.
func TestDisabled(t *testing.T) {
	for _, f := range []Format{FormatV1, FormatV2} {
		w := f.Disabled()
		if f.Unpack(w).Valid {
			t.Errorf("%v: Disabled() decodes as valid", f)
		}
		for i := 0; i < 100; i++ {
			w += AstealsUnit
			if f.Unpack(w).Valid {
				t.Errorf("%v: disabled word became valid after %d increments", f, i+1)
			}
		}
	}
}

func TestPackRangeErrors(t *testing.T) {
	cases := []struct {
		name string
		f    Format
		v    Stealval
	}{
		{"v1 itasks too big", FormatV1, Stealval{Valid: true, ITasks: MaxITasksV1 + 1}},
		{"v1 tail too big", FormatV1, Stealval{Valid: true, Tail: MaxTailV1 + 1}},
		{"v1 nonzero epoch", FormatV1, Stealval{Valid: true, Epoch: 1}},
		{"v2 itasks too big", FormatV2, Stealval{Valid: true, ITasks: MaxITasksV2 + 1}},
		{"v2 tail too big", FormatV2, Stealval{Valid: true, Tail: MaxTailV2 + 1}},
		{"v2 epoch too big", FormatV2, Stealval{Valid: true, Epoch: MaxEpochs}},
		{"negative itasks", FormatV2, Stealval{Valid: true, ITasks: -1}},
		{"negative tail", FormatV2, Stealval{Valid: true, Tail: -1}},
		{"asteals overflow", FormatV2, Stealval{Valid: true, Asteals: 1 << 24}},
	}
	for _, c := range cases {
		if _, err := c.f.Pack(c.v); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// Property: pack/unpack round-trips every in-range value, both formats.
func TestPackUnpackProperty(t *testing.T) {
	fV1 := func(asteals uint32, itasks uint32, tail uint32, valid bool) bool {
		v := Stealval{
			Asteals: asteals & astealsMask,
			Valid:   valid,
			ITasks:  int(itasks) & MaxITasksV1,
			Tail:    int(tail) & MaxTailV1,
		}
		if !valid {
			// V1 encodes invalid by clearing the bit; owner fields survive.
			v.ITasks, v.Tail = int(itasks)&MaxITasksV1, int(tail)&MaxTailV1
		}
		w, err := FormatV1.Pack(v)
		if err != nil {
			return false
		}
		return FormatV1.Unpack(w) == v
	}
	if err := quick.Check(fV1, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error("v1:", err)
	}
	fV2 := func(asteals uint32, itasks uint32, tail uint32, epoch uint8) bool {
		v := Stealval{
			Asteals: asteals & astealsMask,
			Valid:   true,
			Epoch:   int(epoch) % MaxEpochs,
			ITasks:  int(itasks) & MaxITasksV2,
			Tail:    int(tail) & MaxTailV2,
		}
		w, err := FormatV2.Pack(v)
		if err != nil {
			return false
		}
		return FormatV2.Unpack(w) == v
	}
	if err := quick.Check(fV2, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error("v2:", err)
	}
}

// Property: fields are independent — packing two values that differ in one
// field yields words that differ only in that field's bit range.
func TestFieldIndependenceProperty(t *testing.T) {
	f := func(itasks uint32, tailA, tailB uint32) bool {
		a := Stealval{Valid: true, Epoch: 1, ITasks: int(itasks) & MaxITasksV2, Tail: int(tailA) & MaxTailV2}
		b := a
		b.Tail = int(tailB) & MaxTailV2
		wa, err1 := FormatV2.Pack(a)
		wb, err2 := FormatV2.Pack(b)
		if err1 != nil || err2 != nil {
			return false
		}
		diff := wa ^ wb
		return diff&^uint64(MaxTailV2) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
