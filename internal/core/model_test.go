package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"sws/internal/shmem"
	"sws/internal/task"
	"sws/internal/wsq"
)

// Model-based interleaving test: a scheduler goroutine drives the owner
// (PE 0) and a thief (PE 1) in randomized lockstep through every queue
// operation, then checks the fundamental invariant against a reference
// model — every pushed task is obtained exactly once, either by an owner
// pop or a thief steal, and nothing else is ever produced.
//
// Unlike the free-running stress tests, lockstep scheduling explores
// adversarial interleavings deterministically per seed (e.g. a steal
// claim squeezed between SharedAvail and retire, acquires racing
// completions), and failures are replayable.

type modelOp int

const (
	opPush modelOp = iota
	opPop
	opRelease
	opAcquire
	opProgress
	opSteal
	numModelOps
)

// modelStep is one lockstep schedule entry: who acts (0 = owner, 1 =
// thief — the thief only steals) and which operation.
type modelStep struct {
	who int
	op  modelOp
}

// randomSchedule pre-generates a lockstep schedule. pushBias skews the
// owner's ops toward Push so small growable rings are forced through
// their whole grow ladder and into the spill arena.
func randomSchedule(seed int64, steps int, pushBias bool) []modelStep {
	rng := rand.New(rand.NewSource(seed))
	schedule := make([]modelStep, steps)
	for i := range schedule {
		switch {
		case rng.Intn(3) == 0:
			schedule[i] = modelStep{1, opSteal}
		case pushBias && rng.Intn(2) == 0:
			schedule[i] = modelStep{0, opPush}
		default:
			schedule[i] = modelStep{0, modelOp(rng.Intn(int(numModelOps - 1)))}
		}
	}
	return schedule
}

func runModelSchedule(t *testing.T, opts Options, seed int64, steps int) error {
	t.Helper()
	_, err := runModelScheduleSteps(t, opts, seed, randomSchedule(seed, steps, false))
	return err
}

// runModelScheduleSteps drives the 2-PE lockstep harness through an
// explicit schedule (the fuzz target feeds synthesized ones) and returns
// the owner's final queue stats alongside the exactly-once verdict.
func runModelScheduleSteps(t *testing.T, opts Options, seed int64, schedule []modelStep) (OwnerStats, error) {
	t.Helper()
	var ownerStats OwnerStats
	w, err := shmem.NewWorld(shmem.Config{NumPEs: 2, HeapBytes: 4 << 20})
	if err != nil {
		return ownerStats, err
	}

	// Lockstep plumbing: turn[who] <- step; done <- result.
	turns := [2]chan modelOp{make(chan modelOp), make(chan modelOp)}
	done := make(chan error)

	pushed := make(map[uint64]bool)
	got := make(map[uint64]string)
	var next uint64

	runErr := make(chan error, 1)
	go func() {
		runErr <- w.Run(func(c *shmem.Ctx) error {
			q, err := NewQueue(c, opts)
			if err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			me := c.Rank()
			for op := range turns[me] {
				var oerr error
				switch op {
				case opPush:
					id := next
					if err := q.Push(task.Desc{Handle: 1, Payload: task.Args(id)}); err != nil {
						if errors.Is(err, ErrFull) {
							oerr = nil // legal; model just skips
						} else {
							oerr = err
						}
					} else {
						pushed[id] = true
						next++
					}
				case opPop:
					d, ok, err := q.Pop()
					if err != nil {
						oerr = err
					} else if ok {
						args, perr := task.ParseArgs(d.Payload, 1)
						if perr != nil {
							oerr = perr
						} else if prev, dup := got[args[0]]; dup {
							oerr = fmt.Errorf("task %d obtained twice (pop after %s)", args[0], prev)
						} else {
							got[args[0]] = "pop"
						}
					}
				case opRelease:
					_, oerr = q.Release()
				case opAcquire:
					_, oerr = q.Acquire()
				case opProgress:
					oerr = q.Progress()
				case opSteal:
					tasks, out, err := q.Steal(0)
					if err != nil {
						oerr = err
					} else if out == wsq.Stolen {
						for _, d := range tasks {
							args, perr := task.ParseArgs(d.Payload, 1)
							if perr != nil {
								oerr = perr
								break
							}
							if prev, dup := got[args[0]]; dup {
								oerr = fmt.Errorf("task %d obtained twice (steal after %s)", args[0], prev)
								break
							}
							got[args[0]] = "steal"
						}
						// Completion must land before the owner's next
						// lockstep op so the model stays deterministic.
						if oerr == nil {
							oerr = c.Quiet()
						}
					}
				}
				done <- oerr
			}
			if me == 0 {
				ownerStats = q.Stats()
			}
			return c.Barrier()
		})
	}()

	fail := func(err error) (OwnerStats, error) {
		close(turns[0])
		close(turns[1])
		<-runErr
		return ownerStats, err
	}
	for i, s := range schedule {
		turns[s.who] <- s.op
		if err := <-done; err != nil {
			return fail(fmt.Errorf("seed %d step %d (%v by PE %d): %w", seed, i, s.op, s.who, err))
		}
	}
	// Drain: the owner recovers everything that remains.
	for tries := 0; len(got) < len(pushed) && tries < 10*len(schedule)+100; tries++ {
		var op modelOp
		switch tries % 4 {
		case 0:
			op = opPop
		case 1:
			op = opAcquire
		case 2:
			op = opProgress
		default:
			op = opPop
		}
		turns[0] <- op
		if err := <-done; err != nil {
			return fail(fmt.Errorf("seed %d drain: %w", seed, err))
		}
	}
	close(turns[0])
	close(turns[1])
	if err := <-runErr; err != nil {
		return ownerStats, err
	}
	if len(got) != len(pushed) {
		return ownerStats, fmt.Errorf("seed %d: pushed %d tasks, obtained %d", seed, len(pushed), len(got))
	}
	for id := range pushed {
		if _, ok := got[id]; !ok {
			return ownerStats, fmt.Errorf("seed %d: task %d lost", seed, id)
		}
	}
	return ownerStats, nil
}

func TestModelInterleavingsV2(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		if err := runModelSchedule(t, Options{Capacity: 64, Epochs: true, Damping: true}, seed, 300); err != nil {
			t.Fatal(err)
		}
	}
}

func TestModelInterleavingsV1(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		if err := runModelSchedule(t, Options{Capacity: 64, Epochs: false}, seed, 250); err != nil {
			t.Fatal(err)
		}
	}
}

func TestModelInterleavingsStealOne(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		if err := runModelSchedule(t, Options{Capacity: 64, Epochs: true, Policy: wsq.StealOnePolicy}, seed, 250); err != nil {
			t.Fatal(err)
		}
	}
}

func TestModelInterleavingsFused(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		if err := runModelSchedule(t, Options{Capacity: 64, Epochs: true, Fused: true}, seed, 300); err != nil {
			t.Fatal(err)
		}
	}
}

func TestModelInterleavingsTinyCapacity(t *testing.T) {
	// Capacity 4 forces constant wraps and ErrFull paths.
	for seed := int64(1); seed <= 20; seed++ {
		if err := runModelSchedule(t, Options{Capacity: 4, Epochs: true}, seed, 300); err != nil {
			t.Fatal(err)
		}
	}
}

func TestModelInterleavingsGrowable(t *testing.T) {
	// Tiny starting ring + push-biased schedules force the full ladder:
	// reseats interleave with in-flight steals and Push overflows past the
	// largest class into the spill arena. Exactly-once must survive it all.
	opts := Options{Capacity: 4, Epochs: true, Damping: true, Growable: true, MaxGrowth: 2, SpillBlock: 4}
	var grew, spilled, shrank bool
	for seed := int64(1); seed <= 30; seed++ {
		st, err := runModelScheduleSteps(t, opts, seed, randomSchedule(seed, 400, true))
		if err != nil {
			t.Fatal(err)
		}
		grew = grew || st.Grows > 0
		spilled = spilled || st.Spilled > 0
		shrank = shrank || st.Shrinks > 0
		// Every pushed task was obtained, so nothing may still be parked.
		if st.SpillDepth != 0 {
			t.Fatalf("seed %d: fully drained queue still parks %d tasks in the arena (spilled %d, unspilled %d)",
				seed, st.SpillDepth, st.Spilled, st.Unspilled)
		}
	}
	// The sweep is only exercising the machinery if the ladder was walked.
	if !grew || !spilled {
		t.Fatalf("sweep never exercised the elastic paths: grew=%v spilled=%v", grew, spilled)
	}
	if !shrank {
		t.Log("note: no schedule triggered a shrink (pop-drained rings stayed busy)")
	}
}

func TestModelInterleavingsGrowableFused(t *testing.T) {
	// Fused steals resolve the victim region on the delivery goroutine
	// from the fetched class; reseats must never hand it torn geometry.
	opts := Options{Capacity: 4, Epochs: true, Fused: true, Growable: true, MaxGrowth: 2, SpillBlock: 4}
	for seed := int64(1); seed <= 20; seed++ {
		if _, err := runModelScheduleSteps(t, opts, seed, randomSchedule(seed, 400, true)); err != nil {
			t.Fatal(err)
		}
	}
}
