package core

import (
	"errors"
	"fmt"
	"time"

	"sws/internal/obs"
	"sws/internal/ring"
	"sws/internal/shmem"
	"sws/internal/task"
	"sws/internal/wsq"
)

// Options configures an SWS queue. The zero value is completed by
// defaults; see the field comments.
type Options struct {
	// Capacity is the number of task slots in the circular buffer.
	// Default 8192. Bounded by the stealval tail-field width.
	Capacity int
	// PayloadCap is the per-task payload capacity in bytes. Default 24
	// (with the 8-byte header that is the paper's 32-byte BPC task).
	PayloadCap int
	// Epochs selects completion epochs (stealval format V2, the paper's
	// §4.2 refinement). Disable to get the §4.1 behaviour: the owner
	// waits for all in-flight steals before each queue reset.
	Epochs bool
	// Damping enables steal damping (§4.3): thieves probe targets that
	// repeatedly turned up empty with a read-only fetch.
	Damping bool
	// DampThreshold is the asteals overshoot beyond the steal plan that
	// flips a target into empty-mode. Default 4.
	DampThreshold uint32
	// ResetPoll is how long queue resets may poll for a free completion
	// epoch before reporting an error (guards against lost thieves in
	// fault-injection tests). Default 10s.
	ResetPoll time.Duration
	// ForceCloseGrace is how long a reset wait tolerates a stalled
	// completion slot after a peer has been declared dead before force
	// closing the epoch: the dead thief's completion store is never
	// coming, so the owner writes the slot off itself (the claimed tasks
	// are accounted as written off, at-least-once). Default 25ms; negative
	// disables force-closing.
	ForceCloseGrace time.Duration
	// Policy selects the steal-volume schedule (default steal-half, the
	// paper's policy; steal-one and steal-all exist for ablations).
	Policy wsq.Policy
	// Fused enables single-round-trip steals through the substrate's
	// programmable-NIC emulation (shmem.FetchAddGet): the claim fetch-add
	// and the dependent task copy complete in ONE blocking communication,
	// emulating the Portals-offload predecessor the paper cites (§1,
	// "Accelerated Work Stealing"). Requires interconnect support the
	// paper deliberately avoids assuming — provided here as an ablation
	// beyond SWS.
	Fused bool
	// Growable makes the queue elastic: the ring doubles into the next
	// pre-registered symmetric-heap region when full (an epoch-guarded
	// reseat — see DESIGN §4.15), shrinks back when nearly empty, and
	// spills to a local side arena instead of returning ErrFull once the
	// largest region is exhausted. Requires Epochs; selects stealval
	// format V3, whose class field carries the current region to thieves.
	Growable bool
	// MaxGrowth is the number of doublings a growable queue may perform:
	// regions for classes 0..MaxGrowth (capacity<<class slots each) are
	// all reserved in the symmetric heap at construction, ~2x the final
	// capacity in total. Default 3 (8x the starting capacity); at most
	// MaxClasses-1 and bounded by the V3 tail field.
	MaxGrowth int
	// SpillBlock is the number of task slots per spill-arena block.
	// Default 512.
	SpillBlock int
}

func (o *Options) setDefaults() {
	if o.Capacity == 0 {
		o.Capacity = 8192
	}
	if o.PayloadCap == 0 {
		o.PayloadCap = 24
	}
	if o.DampThreshold == 0 {
		o.DampThreshold = 4
	}
	if o.ResetPoll == 0 {
		o.ResetPoll = 10 * time.Second
	}
	if o.ForceCloseGrace == 0 {
		o.ForceCloseGrace = 25 * time.Millisecond
	}
	if o.Growable && o.MaxGrowth == 0 {
		o.MaxGrowth = 3
	}
	if o.SpillBlock == 0 {
		o.SpillBlock = 512
	}
}

// DefaultOptions returns the options used by the paper-style benchmarks:
// epochs and damping on.
func DefaultOptions() Options {
	return Options{Epochs: true, Damping: true}
}

// ErrFull is returned (wrapped, with the queue's capacity and owning
// rank) by Push when a non-growable queue has no free slot even after
// reclaiming completed steals. Match with errors.Is; growable queues
// never return it — they reseat into a larger region or spill instead.
var ErrFull = errors.New("core: task queue full")

// errFull wraps ErrFull with the diagnostics a multi-PE log needs: which
// rank's queue filled up, and at what capacity.
func (q *Queue) errFull() error {
	return fmt.Errorf("core: task queue full (capacity %d, rank %d): %w",
		q.curRing().Cap(), q.ctx.Rank(), ErrFull)
}

// epochRec tracks one published shared block until all claims against it
// have signalled completion and its space has been reclaimed.
type epochRec struct {
	start  uint64 // logical position of the block's first task
	itasks int    // tasks initially shared in this block
	parity int    // completion-array index (epoch % MaxEpochs)

	// claimed* are fixed when the block's stealval is retired (swapped
	// out); until then claimedBlocks is -1.
	claimedBlocks int
	claimedTasks  int

	reclaimedBlocks int // prefix of claimed blocks whose space was reclaimed
}

func (r *epochRec) retired() bool { return r.claimedBlocks >= 0 }
func (r *epochRec) drained() bool {
	return r.retired() && r.reclaimedBlocks == r.claimedBlocks
}

// Queue is one PE's SWS task queue: a split circular buffer of task slots
// in the symmetric heap, fronted by the packed stealval and per-epoch
// completion arrays. Owner methods must only be called from the owning
// PE's goroutine; Steal is thief-side.
// region is one pre-registered ring: a symmetric task-slot array plus
// its geometry. All regions are fixed at construction and never mutated,
// so thief-side code may index them by a fetched stealval class with no
// synchronization against owner reseats.
type region struct {
	addr shmem.Addr
	ring ring.Ring
}

type Queue struct {
	ctx      *shmem.Ctx
	opts     Options
	format   Format
	codec    task.Codec
	policy   wsq.Policy
	maxSlots int // completion-array slots per epoch

	// regions holds the task ring for every size class (one entry for
	// non-growable queues); cls is the class currently in use. regions is
	// immutable after NewQueue; cls is owner state — thieves never read
	// it, they use the class in the stealval they fetched.
	regions []region
	cls     int

	// Symmetric layout (identical offsets on every PE).
	stealvalAddr   shmem.Addr
	geomAddr       shmem.Addr // packed owner geometry, published at reseats
	completionAddr shmem.Addr // MaxEpochs * wsq.MaxPlanLen words

	// Owner-side logical positions: rtail <= stail <= split <= head.
	// [rtail, stail)  claimed by older epochs, awaiting completion;
	// [stail, split)  the current shared block;
	// [split, head)   the local portion.
	head  uint64
	split uint64
	stail uint64
	rtail uint64

	curEpoch int        // monotonic epoch counter (parity indexes arrays)
	recs     []epochRec // oldest-first; last entry is the current block
	maxIT    int        // cap on an advertised block

	// Thief-side damping state: per-victim mode (false=full, true=empty).
	emptyMode []bool

	// spanSeq numbers this thief's steal attempts; combined with the rank
	// it forms the causal span ID stamped on each attempt's sub-ops.
	spanSeq uint64

	// scratch is the owner-side slot staging buffer (one slot).
	scratch []byte

	// stealBuf and stealSpans are thief-side staging reused across Steal
	// calls (a Queue handle is driven by one goroutine, so reuse is safe).
	stealBuf   []byte
	stealSpans [2]shmem.Span

	// arena is the owner-local spill store for tasks that overflow even
	// the largest region (growable queues only).
	arena spillArena

	// ownerStats are maintained by owner operations for introspection.
	releases, acquires, resetPolls uint64
	// forceClosed/writtenOff track epochs force-closed after a thief died
	// mid-steal and the tasks written off with them.
	forceClosed, writtenOff uint64
	// grows/shrinks count reseats by direction; spilled/unspilled count
	// tasks through the arena.
	grows, shrinks     uint64
	spilled, unspilled uint64
	// growLat is the reseat latency distribution (close + drain + copy +
	// reopen), the cost a growable queue pays instead of ErrFull.
	growLat obs.Hist
}

// NewQueue collectively constructs the queue: every PE must call it with
// identical options. It allocates the symmetric regions and publishes an
// empty-but-valid stealval.
func NewQueue(ctx *shmem.Ctx, opts Options) (*Queue, error) {
	opts.setDefaults()
	format := FormatV1
	if opts.Epochs {
		format = FormatV2
	}
	maxCls := 0
	if opts.Growable {
		if !opts.Epochs {
			return nil, errors.New("core: growable queues require completion epochs (the reseat closes and reopens an epoch)")
		}
		format = FormatV3
		maxCls = opts.MaxGrowth
		if maxCls < 1 || maxCls >= MaxClasses {
			return nil, fmt.Errorf("core: MaxGrowth %d out of range [1, %d)", maxCls, MaxClasses)
		}
	}
	if opts.Capacity < 2 {
		return nil, fmt.Errorf("core: capacity %d too small", opts.Capacity)
	}
	if maxCap := opts.Capacity << maxCls; maxCap > format.maxTail()+1 {
		return nil, fmt.Errorf("core: capacity %d (x%d growth) exceeds stealval tail field of %v (max %d)",
			opts.Capacity, 1<<maxCls, format, format.maxTail()+1)
	}
	codec, err := task.NewCodec(opts.PayloadCap)
	if err != nil {
		return nil, err
	}
	q := &Queue{
		ctx:       ctx,
		opts:      opts,
		format:    format,
		codec:     codec,
		policy:    opts.Policy,
		emptyMode: make([]bool, ctx.NumPEs()),
		scratch:   make([]byte, codec.SlotSize()),
	}
	q.arena.init(codec.SlotSize(), opts.SpillBlock)
	// Completion arrays are indexed by attempt number, so their size must
	// cover the policy's longest plan over any advertisable block.
	switch opts.Policy {
	case wsq.StealOnePolicy:
		q.maxSlots = 512 // bounds blocks to 512 tasks per release
	case wsq.StealAllPolicy:
		q.maxSlots = 1
	default:
		q.maxSlots = wsq.MaxPlanLen
	}
	// §4.3: cap the advertised block so thieves' increments cannot
	// overflow asteals into owner fields even if every PE piles on.
	q.maxIT = format.maxITasks() - ctx.NumPEs()
	if q.maxIT < 1 {
		return nil, fmt.Errorf("core: %d PEs leave no itasks range", ctx.NumPEs())
	}
	if maxCap := opts.Capacity << maxCls; q.maxIT > maxCap {
		q.maxIT = maxCap
	}
	if mb := q.policy.MaxBlock(q.maxSlots); q.maxIT > mb {
		q.maxIT = mb
	}
	if q.stealvalAddr, err = ctx.Alloc(shmem.WordSize); err != nil {
		return nil, err
	}
	if q.geomAddr, err = ctx.Alloc(shmem.WordSize); err != nil {
		return nil, err
	}
	if q.completionAddr, err = ctx.Alloc(MaxEpochs * q.maxSlots * shmem.WordSize); err != nil {
		return nil, err
	}
	// Reserve the whole region ladder up front, collectively: every class
	// a reseat may ever use exists at identical symmetric addresses on
	// all PEs before the first task is pushed, which is what lets a thief
	// resolve any fetched class without communication.
	q.regions = make([]region, maxCls+1)
	for c := range q.regions {
		rg, err := ring.New(opts.Capacity << c)
		if err != nil {
			return nil, err
		}
		addr, err := ctx.Alloc((opts.Capacity << c) * codec.SlotSize())
		if err != nil {
			if opts.Growable {
				return nil, fmt.Errorf("core: reserving grow region class %d (%d slots, %d remaining heap bytes): %w (raise shmem.Config.HeapBytes or lower MaxGrowth)",
					c, opts.Capacity<<c, ctx.HeapRemaining(), err)
			}
			return nil, err
		}
		q.regions[c] = region{addr: addr, ring: rg}
	}
	if opts.Fused {
		// The fused handler is a pure function of the fetched stealval
		// and the queue's symmetric geometry; the stealval's own address
		// is the symmetric handler id.
		if err := ctx.RegisterFused(uint64(q.stealvalAddr), q.fusedRanges); err != nil {
			return nil, err
		}
	}
	// Publish an empty, valid block for epoch 0, and the initial geometry.
	if err := q.publish(0, 0); err != nil {
		return nil, err
	}
	if err := q.publishGeom(); err != nil {
		return nil, err
	}
	q.recs = []epochRec{{start: 0, itasks: 0, parity: 0, claimedBlocks: -1}}
	return q, nil
}

// curRing returns the ring of the size class currently in use (owner
// side; thieves use the class out of the stealval they fetched).
func (q *Queue) curRing() ring.Ring { return q.regions[q.cls].ring }

// fusedRanges is the target-side ("NIC") half of a fused steal: map the
// fetched stealval to the claimed block's byte ranges. It runs on the
// transport's delivery goroutine, concurrently with owner operations, so
// it must only read immutable queue state: the region it addresses comes
// from the fetched word's class, never from q.cls.
func (q *Queue) fusedRanges(old uint64) ([2]shmem.FusedSpan, int) {
	var out [2]shmem.FusedSpan
	v := q.format.Unpack(old)
	if !v.Valid || v.Class >= len(q.regions) {
		return out, 0
	}
	if int(v.Asteals) >= q.policy.PlanLen(v.ITasks) {
		return out, 0
	}
	reg := q.regions[v.Class]
	k := q.policy.Block(v.ITasks, int(v.Asteals))
	off := q.policy.Offset(v.ITasks, int(v.Asteals))
	spans, n, err := reg.ring.Spans(uint64(v.Tail)+uint64(off), k)
	if err != nil {
		return out, 0
	}
	slotSize := q.codec.SlotSize()
	for i := 0; i < n; i++ {
		out[i] = shmem.FusedSpan{
			Addr: reg.addr + shmem.Addr(spans[i].Start*slotSize),
			N:    spans[i].Count * slotSize,
		}
	}
	return out, n
}

// Format reports the stealval layout in use.
func (q *Queue) Format() Format { return q.format }

// LocalCount returns the number of tasks only the owner can reach: the
// ring's local portion plus any spilled arena blocks.
func (q *Queue) LocalCount() int { return q.ringLocal() + q.arena.len() }

// ringLocal is the local portion of the ring alone — the pool Release
// and Acquire geometry works on this, never on spilled tasks.
func (q *Queue) ringLocal() int { return ring.Distance(q.split, q.head) }

// SharedAvail returns the owner's view of unclaimed shared tasks in the
// current block (a local atomic read of its own stealval).
func (q *Queue) SharedAvail() int {
	w, err := q.ctx.Load64(q.ctx.Rank(), q.stealvalAddr)
	if err != nil {
		return 0
	}
	v := q.format.Unpack(w)
	if !v.Valid {
		return 0
	}
	return v.ITasks - q.policy.Offset(v.ITasks, q.clampAttempts(v))
}

// clampAttempts bounds the raw asteals counter by the steal plan length.
func (q *Queue) clampAttempts(v Stealval) int {
	n := q.policy.PlanLen(v.ITasks)
	if int(v.Asteals) < n {
		return int(v.Asteals)
	}
	return n
}

// free returns the number of unoccupied slots in the current ring.
func (q *Queue) free() int { return q.curRing().Cap() - ring.Distance(q.rtail, q.head) }

// slotAddr returns the heap address of the physical slot for a logical
// position in the current ring.
func (q *Queue) slotAddr(pos uint64) shmem.Addr {
	reg := q.regions[q.cls]
	return reg.addr + shmem.Addr(reg.ring.Slot(pos)*q.codec.SlotSize())
}

// Push enqueues a task at the head of the local portion. Purely local: no
// locking, no communication (§3.1 / §4.1: enqueueing is unchanged and
// lightweight). A growable queue that runs out of ring reseats into the
// next size class, and past the largest class spills to the arena; only
// a non-growable queue can return ErrFull.
func (q *Queue) Push(d task.Desc) error {
	if q.arena.len() > 0 {
		// LIFO order invariant: everything in the arena is newer than
		// everything in the ring, so while spilled tasks exist, newer
		// pushes must join them rather than bypass them into the ring.
		return q.spill(d)
	}
	if q.free() == 0 {
		if err := q.Progress(); err != nil {
			return err
		}
		if q.free() == 0 {
			switch {
			case q.opts.Growable && q.cls < len(q.regions)-1:
				if err := q.reseat(q.cls + 1); err != nil {
					return err
				}
			case q.opts.Growable:
				return q.spill(d)
			default:
				return q.errFull()
			}
		}
	}
	if err := q.codec.Encode(q.scratch, d); err != nil {
		return err
	}
	if err := q.ctx.Put(q.ctx.Rank(), q.slotAddr(q.head), q.scratch); err != nil {
		return err
	}
	q.head++
	return nil
}

// Pop removes the newest task from the local portion (LIFO, giving the
// depth-first traversal that bounds pool space). Spilled tasks are newer
// than everything in the ring, so the arena drains first.
func (q *Queue) Pop() (task.Desc, bool, error) {
	if buf, ok := q.arena.popNewest(); ok {
		d, err := q.codec.Decode(buf)
		if err != nil {
			return task.Desc{}, false, err
		}
		return d, true, nil
	}
	if q.head == q.split {
		return task.Desc{}, false, nil
	}
	if err := q.ctx.Get(q.ctx.Rank(), q.slotAddr(q.head-1), q.scratch); err != nil {
		return task.Desc{}, false, err
	}
	d, err := q.codec.Decode(q.scratch)
	if err != nil {
		return task.Desc{}, false, err
	}
	q.head--
	return d, true, nil
}

// cur returns the current (last) epoch record.
func (q *Queue) cur() *epochRec { return &q.recs[len(q.recs)-1] }

// publish writes a fresh valid stealval for the current epoch parity.
func (q *Queue) publish(itasks int, stail uint64) error {
	w, err := q.format.Pack(Stealval{
		Valid:  true,
		Epoch:  q.parity(),
		Class:  q.clsField(),
		ITasks: itasks,
		Tail:   q.curRing().Slot(stail),
	})
	if err != nil {
		return err
	}
	return q.ctx.Store64(q.ctx.Rank(), q.stealvalAddr, w)
}

// clsField is the class value packed into published stealvals: the
// current class for V3, 0 for the classless formats.
func (q *Queue) clsField() int {
	if q.format != FormatV3 {
		return 0
	}
	return q.cls
}

func (q *Queue) parity() int {
	if q.format == FormatV1 {
		return 0
	}
	return q.curEpoch % MaxEpochs
}

// retire disables stealing, harvests the swapped-out stealval into the
// current epoch record, and drops the record immediately if nothing was
// claimed. It returns the number of unclaimed tasks left in the block.
func (q *Queue) retire() (unclaimed int, err error) {
	old, err := q.ctx.Swap64(q.ctx.Rank(), q.stealvalAddr, q.format.Disabled())
	if err != nil {
		return 0, err
	}
	v := q.format.Unpack(old)
	rec := q.cur()
	if !v.Valid {
		// Every retire is paired with a startEpoch before control returns
		// to the owner loop, so a disabled stealval here means corruption.
		return 0, fmt.Errorf("core: retire found stealval already disabled")
	}
	if v.ITasks != rec.itasks {
		return 0, fmt.Errorf("core: stealval itasks %d does not match epoch record %d", v.ITasks, rec.itasks)
	}
	rec.claimedBlocks = q.clampAttempts(v)
	rec.claimedTasks = q.policy.Offset(rec.itasks, rec.claimedBlocks)
	unclaimed = rec.itasks - rec.claimedTasks
	// Advance stail past the claimed prefix; the unclaimed remainder is
	// redistributed by the caller (acquire keeps/localizes it; release
	// requires it to be empty).
	q.stail += uint64(rec.claimedTasks)
	if rec.claimedBlocks == 0 {
		// Nothing was ever claimed: no completions to wait for.
		q.recs = q.recs[:len(q.recs)-1]
	}
	return unclaimed, nil
}

// completionSlotAddr returns the heap address of completion slot b for
// parity p.
func (q *Queue) completionSlotAddr(p, b int) shmem.Addr {
	return q.completionAddr + shmem.Addr((p*q.maxSlots+b)*shmem.WordSize)
}

// StealvalAddr exposes the queue's stealval heap address so conformance
// tests can script protocol steps (a manual fetch-add claim) exactly as a
// remote thief would issue them, on any transport.
func (q *Queue) StealvalAddr() shmem.Addr { return q.stealvalAddr }

// CompletionSlotAddr exposes the completion slot address for (epoch,
// attempt), for the same scripted-protocol tests. The slot parity is
// epoch mod MaxEpochs (V1 has a single parity).
func (q *Queue) CompletionSlotAddr(epoch, attempt int) shmem.Addr {
	p := 0
	if q.format != FormatV1 {
		p = epoch % MaxEpochs
	}
	return q.completionSlotAddr(p, attempt)
}

// Progress reclaims space for the longest prefix of completed steals,
// scanning draining epochs oldest-first (§4.2). Purely local reads of the
// completion arrays.
func (q *Queue) Progress() error {
	for len(q.recs) > 0 {
		rec := &q.recs[0]
		if !rec.retired() {
			return nil // current block; nothing to drain yet
		}
		for rec.reclaimedBlocks < rec.claimedBlocks {
			b := rec.reclaimedBlocks
			w, err := q.ctx.Load64(q.ctx.Rank(), q.completionSlotAddr(rec.parity, b))
			if err != nil {
				return err
			}
			if w == 0 {
				return nil // oldest outstanding steal still in flight
			}
			want := q.policy.Block(rec.itasks, b)
			if int(w) != want {
				return fmt.Errorf("core: completion slot %d of epoch parity %d holds %d, want %d tasks",
					b, rec.parity, w, want)
			}
			q.rtail += uint64(want)
			rec.reclaimedBlocks++
		}
		// Fully drained: zero its completion slots so the parity can be
		// reused, then drop the record.
		for b := 0; b < rec.claimedBlocks; b++ {
			if err := q.ctx.Store64(q.ctx.Rank(), q.completionSlotAddr(rec.parity, b), 0); err != nil {
				return err
			}
		}
		q.recs = q.recs[1:]
	}
	return nil
}

// waitParityFree polls Progress until no draining record uses parity p
// (V1: until every draining record is gone — the §4.1 wait-for-all).
// p < 0 waits for every draining record regardless of parity — the
// reseat's wait-for-all-in-flight-steals.
//
// If a peer has been declared dead while the wait is stalled, the missing
// completion store may never come: after ForceCloseGrace the owner force
// closes the stalled slots itself (see forceCloseStalled) instead of
// wedging the queue forever.
func (q *Queue) waitParityFree(p int) error {
	deadline := time.Now().Add(q.opts.ResetPoll)
	var deadSince time.Time
	for {
		if err := q.Progress(); err != nil {
			return err
		}
		busy := false
		for i := range q.recs {
			rec := &q.recs[i]
			if !rec.retired() {
				continue
			}
			if p < 0 || q.format == FormatV1 || rec.parity == p {
				busy = true
				break
			}
		}
		if !busy {
			return nil
		}
		q.resetPolls++
		if werr := q.ctx.Err(); werr != nil {
			return werr
		}
		if g := q.opts.ForceCloseGrace; g >= 0 {
			if lv := q.ctx.Liveness(); lv != nil && lv.AnyDead() {
				if deadSince.IsZero() {
					deadSince = time.Now()
				} else if time.Since(deadSince) > g {
					if err := q.forceCloseStalled(); err != nil {
						return err
					}
					continue // re-run Progress over the filled slots
				}
			}
		}
		if time.Now().After(deadline) {
			if p < 0 {
				return fmt.Errorf("core: reseat stalled %v waiting for in-flight steals to drain (lost thief?)",
					q.opts.ResetPoll)
			}
			return fmt.Errorf("core: reset stalled %v waiting for completion epoch parity %d (lost thief?)",
				q.opts.ResetPoll, p)
		}
		// Scheduler-visible yield: a thief's completion store is what ends
		// this wait, and under the sim transport it only lands if the
		// owner hands the lockstep token back.
		q.ctx.Relax()
	}
}

// forceCloseStalled fills every stalled completion slot of every retired
// epoch with its expected count, releasing the space a dead thief claimed
// but never confirmed. The grace period in waitParityFree gives live
// thieves (whose steals complete in a bounded number of round trips) time
// to land their stores first; a slot force-closed under a still-running
// live thief is prevented by that bound, not detected — degraded-mode
// accounting is at-least-once by design.
func (q *Queue) forceCloseStalled() error {
	for i := range q.recs {
		rec := &q.recs[i]
		if !rec.retired() {
			continue
		}
		closed := false
		for b := rec.reclaimedBlocks; b < rec.claimedBlocks; b++ {
			addr := q.completionSlotAddr(rec.parity, b)
			w, err := q.ctx.Load64(q.ctx.Rank(), addr)
			if err != nil {
				return err
			}
			if w != 0 {
				continue
			}
			want := q.policy.Block(rec.itasks, b)
			if err := q.ctx.Store64(q.ctx.Rank(), addr, uint64(want)); err != nil {
				return err
			}
			q.writtenOff += uint64(want)
			closed = true
		}
		if closed {
			q.forceClosed++
		}
	}
	return nil
}

// startEpoch begins a new completion epoch: waits for its parity's
// completion array to drain, zeroes it, and appends the record.
// The caller must have retired the previous block.
func (q *Queue) startEpoch(itasks int) error {
	q.curEpoch++
	p := q.parity()
	if err := q.waitParityFree(p); err != nil {
		return err
	}
	for b := 0; b < q.maxSlots; b++ {
		if err := q.ctx.Store64(q.ctx.Rank(), q.completionSlotAddr(p, b), 0); err != nil {
			return err
		}
	}
	q.recs = append(q.recs, epochRec{start: q.stail, itasks: itasks, parity: p, claimedBlocks: -1})
	return q.publish(itasks, q.stail)
}

// Release moves half of the local tasks into a fresh shared block when
// the shared portion is empty (§4.1). Reports the number of tasks
// exposed; 0 means the release did not apply (shared work remains, or
// fewer than 2 local tasks, or — with epochs — both completion arrays are
// still draining, in which case we simply retry later rather than poll).
func (q *Queue) Release() (int, error) {
	// Elastic maintenance first: refill the ring from the arena so
	// spilled tasks become reachable (and eventually stealable), and
	// fold an oversized ring back down when occupancy has collapsed.
	if q.opts.Growable {
		if err := q.unspill(); err != nil {
			return 0, err
		}
		if err := q.maybeShrink(); err != nil {
			return 0, err
		}
	}
	local := q.ringLocal()
	if local < 2 || q.SharedAvail() > 0 {
		return 0, nil
	}
	// Non-blocking variant of the parity wait: skip the release if the
	// next parity is still draining. Work stays local and runnable.
	if err := q.Progress(); err != nil {
		return 0, err
	}
	nextParity := q.parity()
	if q.format == FormatV2 {
		nextParity = (q.curEpoch + 1) % MaxEpochs
	}
	for i := range q.recs[:len(q.recs)-1] {
		rec := &q.recs[i]
		if q.format == FormatV1 || rec.parity == nextParity {
			return 0, nil
		}
	}
	unclaimed, err := q.retire()
	if err != nil {
		return 0, err
	}
	if unclaimed != 0 {
		// Claims only grow between the SharedAvail()==0 check above and
		// the retire, so leftover unclaimed work is impossible here.
		return 0, fmt.Errorf("core: release found %d unclaimed shared tasks", unclaimed)
	}
	moved := local / 2
	if moved > q.maxIT {
		moved = q.maxIT
	}
	// The new block is the bottom `moved` tasks of the local portion:
	// [split, split+moved). stail has already advanced to split's old
	// claimed boundary; after a clean retire stail == split.
	if q.stail != q.split {
		return 0, fmt.Errorf("core: release with stail %d != split %d", q.stail, q.split)
	}
	q.split += uint64(moved)
	q.releases++
	if err := q.startEpoch(moved); err != nil {
		return 0, err
	}
	return moved, nil
}

// Acquire moves half of the unclaimed shared tasks back into the local
// portion when the local portion is empty (§4.1–4.2). Stealing is
// disabled for the duration of the update; with epochs the owner never
// waits for in-flight claims unless both completion arrays are busy.
func (q *Queue) Acquire() (int, error) {
	if q.LocalCount() != 0 {
		return 0, nil
	}
	unclaimed, err := q.retire()
	if err != nil {
		return 0, err
	}
	if unclaimed == 0 {
		// Nothing to localize; re-open an empty block so thieves see a
		// valid (if empty) queue.
		if err := q.startEpoch(0); err != nil {
			return 0, err
		}
		return 0, nil
	}
	moved := (unclaimed + 1) / 2
	remain := unclaimed - moved
	if remain > q.maxIT {
		// Cannot advertise more than the field allows; localize the rest.
		moved += remain - q.maxIT
		remain = q.maxIT
	}
	// Unclaimed region is [stail, split); keep the bottom `remain` shared
	// and absorb the top `moved` into the local portion.
	if ring.Distance(q.stail, q.split) != unclaimed {
		return 0, fmt.Errorf("core: acquire sees %d unclaimed, geometry says %d",
			unclaimed, ring.Distance(q.stail, q.split))
	}
	q.split -= uint64(moved)
	q.acquires++
	if err := q.startEpoch(remain); err != nil {
		return 0, err
	}
	return moved, nil
}

// Epoch returns the monotonic completion-epoch counter (owner-side read;
// call only from the owning PE's goroutine).
func (q *Queue) Epoch() int { return q.curEpoch }

// OwnerStats reports queue-owner activity for diagnostics.
type OwnerStats struct {
	Releases, Acquires, ResetPolls uint64
	Epochs                         int // draining + current epoch records
	// ForceClosed counts epochs force-closed after a thief died holding an
	// unconfirmed claim; TasksWrittenOff is the tasks those claims covered
	// (lost or executed-but-unconfirmed: at-least-once).
	ForceClosed     uint64
	TasksWrittenOff uint64
	// Grows/Shrinks count ring reseats by direction; Spilled counts tasks
	// that overflowed into the side arena, SpillDepth the tasks currently
	// parked there. Class and Capacity describe the ring in use.
	Grows, Shrinks uint64
	Spilled        uint64
	Unspilled      uint64
	SpillDepth     int
	Class          int
	Capacity       int
}

// Stats returns a snapshot of owner-side activity.
func (q *Queue) Stats() OwnerStats {
	return OwnerStats{
		Releases:        q.releases,
		Acquires:        q.acquires,
		ResetPolls:      q.resetPolls,
		Epochs:          len(q.recs),
		ForceClosed:     q.forceClosed,
		TasksWrittenOff: q.writtenOff,
		Grows:           q.grows,
		Shrinks:         q.shrinks,
		Spilled:         q.spilled,
		Unspilled:       q.unspilled,
		SpillDepth:      q.arena.len(),
		Class:           q.cls,
		Capacity:        q.curRing().Cap(),
	}
}

// GrowLat returns the reseat latency distribution (empty for
// non-growable queues): the price paid per grow/shrink instead of an
// ErrFull failure.
func (q *Queue) GrowLat() obs.HistSnap { return q.growLat.Snapshot() }
