package core

import (
	"fmt"
	"testing"

	"sws/internal/shmem"
	"sws/internal/wsq"
)

// policySteal runs one (owner, thief) round under the given policy and
// returns the sequence of stolen block sizes.
func policySteal(t *testing.T, policy wsq.Policy, exposed int) []int {
	t.Helper()
	var sizes []int
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, Options{Epochs: true, Policy: policy})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := uint64(0); i < uint64(2*exposed); i++ {
				if err := q.Push(desc(i)); err != nil {
					return err
				}
			}
			if n, err := q.Release(); err != nil || n != exposed {
				return fmt.Errorf("release: n=%d err=%v", n, err)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		for {
			tasks, out, err := q.Steal(0)
			if err != nil {
				return err
			}
			if out != wsq.Stolen {
				break
			}
			sizes = append(sizes, len(tasks))
		}
		return c.Barrier()
	})
	return sizes
}

func TestStealOnePolicyQueue(t *testing.T) {
	sizes := policySteal(t, wsq.StealOnePolicy, 10)
	if len(sizes) != 10 {
		t.Fatalf("steals = %d, want 10", len(sizes))
	}
	for i, k := range sizes {
		if k != 1 {
			t.Errorf("steal %d took %d tasks", i, k)
		}
	}
}

func TestStealAllPolicyQueue(t *testing.T) {
	sizes := policySteal(t, wsq.StealAllPolicy, 10)
	if len(sizes) != 1 || sizes[0] != 10 {
		t.Fatalf("sizes = %v, want [10]", sizes)
	}
}

func TestStealHalfPolicyQueueDefault(t *testing.T) {
	sizes := policySteal(t, wsq.StealHalfPolicy, 150)
	want := []int{75, 37, 19, 9, 5, 2, 1, 1, 1}
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("steal %d = %d, want %d", i, sizes[i], want[i])
		}
	}
}

// Steal-one releases must clamp the advertised block to the completion
// slot budget.
func TestStealOneBlockClamp(t *testing.T) {
	runWorld(t, 2, func(c *shmem.Ctx) error {
		q, err := NewQueue(c, Options{Epochs: true, Policy: wsq.StealOnePolicy, Capacity: 4096})
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return c.Barrier()
		}
		for i := uint64(0); i < 3000; i++ {
			if err := q.Push(desc(i)); err != nil {
				return err
			}
		}
		n, err := q.Release()
		if err != nil {
			return err
		}
		if n > 512 {
			return fmt.Errorf("release exposed %d tasks; steal-one slot budget is 512", n)
		}
		return c.Barrier()
	})
}
