package cli

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sws/internal/obs"
	"sws/internal/trace"
)

// ObsFlags bundles the observability flags shared by the benchmark CLIs:
// a live metrics/pprof endpoint, Perfetto trace export, and CPU/heap
// profiles. Register it once, call Start before the run and Finish after.
type ObsFlags struct {
	MetricsAddr string
	TraceOut    string
	TraceCap    int
	CPUProfile  string
	MemProfile  string

	gatherer *obs.Gatherer
	server   *obs.Server
	stopCPU  func() error
}

// RegisterObsFlags installs the shared observability flags on fs
// (flag.CommandLine when nil).
func RegisterObsFlags(fs *flag.FlagSet) *ObsFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	o := &ObsFlags{}
	fs.StringVar(&o.MetricsAddr, "metrics-addr", "", "serve live metrics and pprof on this address (e.g. :9090); /metrics, /metrics.json, /debug/vars, /debug/pprof")
	fs.StringVar(&o.TraceOut, "trace-out", "", "write a Perfetto/chrome://tracing JSON trace to this file after the run")
	fs.IntVar(&o.TraceCap, "trace-cap", 1<<16, "per-PE event capacity of the trace ring buffer")
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&o.MemProfile, "memprofile", "", "write a pprof heap profile to this file after the run")
	return o
}

// Gatherer returns the gatherer pools should register with (for
// pool.Config.Metrics), or nil when no metrics endpoint was requested.
func (o *ObsFlags) Gatherer() *obs.Gatherer {
	if o.MetricsAddr == "" {
		return nil
	}
	if o.gatherer == nil {
		o.gatherer = obs.NewGatherer()
	}
	return o.gatherer
}

// NewTrace allocates the trace set requested by -trace-out, or returns
// nil when trace export is disabled.
func (o *ObsFlags) NewTrace(npes int) (*trace.Set, error) {
	if o.TraceOut == "" {
		return nil, nil
	}
	return trace.NewSet(npes, o.TraceCap)
}

// Start begins CPU profiling and serves the metrics endpoint. Call before
// the measured run; it is a no-op for disabled features.
func (o *ObsFlags) Start() error {
	if o.CPUProfile != "" {
		stop, err := obs.StartCPUProfile(o.CPUProfile)
		if err != nil {
			return err
		}
		o.stopCPU = stop
	}
	if o.MetricsAddr != "" {
		srv, err := obs.Serve(o.MetricsAddr, o.Gatherer())
		if err != nil {
			return err
		}
		o.server = srv
		fmt.Fprintf(os.Stderr, "metrics: serving on http://%s/metrics\n", srv.Addr())
	}
	return nil
}

// Finish flushes profiles, writes the trace JSON (tr may be nil), and
// shuts down the metrics server. The first error wins but every teardown
// step still runs.
func (o *ObsFlags) Finish(tr *trace.Set) error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if o.stopCPU != nil {
		keep(o.stopCPU())
		o.stopCPU = nil
	}
	if o.MemProfile != "" {
		keep(obs.WriteHeapProfile(o.MemProfile))
	}
	if tr != nil && o.TraceOut != "" {
		keep(tr.WriteJSONFile(o.TraceOut))
		if first == nil {
			fmt.Fprintf(os.Stderr, "trace: wrote %s (load in https://ui.perfetto.dev or chrome://tracing)\n", o.TraceOut)
		}
	}
	if o.server != nil {
		// Graceful: a scrape in flight at teardown still gets its body.
		keep(o.server.ShutdownTimeout(2 * time.Second))
		o.server = nil
	}
	return first
}
