// Package cli holds small helpers shared by the command-line tools in
// cmd/: flag parsing for PE lists and table emission.
package cli

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"sws/internal/bench"
)

// ParsePEList parses a comma-separated list of PE counts; an empty string
// yields the default sweep.
func ParsePEList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return bench.DefaultPECounts(), nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("cli: bad PE count %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// Emit renders tables as aligned text or CSV.
func Emit(w io.Writer, tables []*bench.Table, csv bool) error {
	for _, t := range tables {
		if csv {
			if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
				return err
			}
			if err := t.CSV(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
			continue
		}
		if err := t.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}
