package cli

import (
	"bytes"
	"strings"
	"testing"

	"sws/internal/bench"
)

func TestParsePEList(t *testing.T) {
	got, err := ParsePEList(" 2, 4,8 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 2 || got[2] != 8 {
		t.Errorf("got %v", got)
	}
	if def, err := ParsePEList(""); err != nil || len(def) == 0 {
		t.Errorf("default list: %v %v", def, err)
	}
	for _, bad := range []string{"a", "0", "-1", "1,,x"} {
		if _, err := ParsePEList(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestEmit(t *testing.T) {
	tbl := &bench.Table{Title: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}}
	var buf bytes.Buffer
	if err := Emit(&buf, []*bench.Table{tbl}, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "## t") {
		t.Errorf("text emit: %q", buf.String())
	}
	buf.Reset()
	if err := Emit(&buf, []*bench.Table{tbl}, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# t") || !strings.Contains(buf.String(), "a") {
		t.Errorf("csv emit: %q", buf.String())
	}
}
