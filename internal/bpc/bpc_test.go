package bpc

import (
	"testing"
	"time"

	"sws/internal/pool"
	"sws/internal/shmem"
)

func TestValidate(t *testing.T) {
	bad := []Params{
		{Depth: 0, NConsumers: 1},
		{Depth: 1, NConsumers: -1},
		{Depth: 1, NConsumers: 1, ConsumerWork: -time.Second},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("Default invalid: %v", err)
	}
	if err := Paper().Validate(); err != nil {
		t.Errorf("Paper invalid: %v", err)
	}
}

func TestTotalTasks(t *testing.T) {
	p := Params{Depth: 500, NConsumers: 8192}
	if got := p.TotalTasks(); got != 500*8193 {
		t.Errorf("TotalTasks = %d, want %d", got, 500*8193)
	}
}

func TestPaperRatio(t *testing.T) {
	p := Paper()
	if p.ConsumerWork != 5*p.ProducerWork {
		t.Errorf("paper ratio: consumer %v, producer %v", p.ConsumerWork, p.ProducerWork)
	}
	if p.Depth != 500 || p.NConsumers != 8192 {
		t.Errorf("paper params wrong: %+v", p)
	}
	d := Default()
	if d.ConsumerWork != 5*d.ProducerWork {
		t.Errorf("default must preserve the 5:1 ratio: %+v", d)
	}
}

func TestSeedUnregistered(t *testing.T) {
	wl, err := NewWorkload(Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Seed(nil, 0); err == nil {
		t.Error("unregistered seed accepted")
	}
}

// A small end-to-end run: every producer and consumer must execute
// exactly once, under both protocols.
func TestRunCounts(t *testing.T) {
	for _, proto := range []pool.Protocol{pool.SWS, pool.SDC} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			params := Params{Depth: 8, NConsumers: 40, ConsumerWork: 20 * time.Microsecond, ProducerWork: 4 * time.Microsecond}
			wl, err := NewWorkload(params)
			if err != nil {
				t.Fatal(err)
			}
			w, err := shmem.NewWorld(shmem.Config{NumPEs: 3, HeapBytes: 8 << 20})
			if err != nil {
				t.Fatal(err)
			}
			err = w.Run(func(c *shmem.Ctx) error {
				reg := pool.NewRegistry()
				if err := wl.Register(reg); err != nil {
					return err
				}
				p, err := pool.New(c, reg, pool.Config{Protocol: proto, Seed: 13})
				if err != nil {
					return err
				}
				if err := wl.Seed(p, c.Rank()); err != nil {
					return err
				}
				return p.Run()
			})
			if err != nil {
				t.Fatal(err)
			}
			if wl.Producers() != uint64(params.Depth) {
				t.Errorf("producers = %d, want %d", wl.Producers(), params.Depth)
			}
			if wl.Consumers() != uint64(params.Depth*params.NConsumers) {
				t.Errorf("consumers = %d, want %d", wl.Consumers(), params.Depth*params.NConsumers)
			}
		})
	}
}

// The producer must actually bounce: with multiple PEs, producers should
// not all execute on rank 0.
func TestProducerBounces(t *testing.T) {
	params := Params{Depth: 40, NConsumers: 64, ConsumerWork: 50 * time.Microsecond, ProducerWork: 10 * time.Microsecond}
	wl, err := NewWorkload(params)
	if err != nil {
		t.Fatal(err)
	}
	var producerRanks [4]uint64
	// Wrap the producer to record where it ran: re-register under a
	// wrapper registry is intrusive, so observe via per-PE steal stats
	// instead — if producers never moved, non-zero ranks could only run
	// consumers, and rank 0 would execute all Depth producers. We assert
	// the cheaper, robust property: at least one steal landed and the
	// total works out.
	_ = producerRanks
	w, err := shmem.NewWorld(shmem.Config{NumPEs: 4, HeapBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	stolen := make([]uint64, 4)
	err = w.Run(func(c *shmem.Ctx) error {
		reg := pool.NewRegistry()
		if err := wl.Register(reg); err != nil {
			return err
		}
		p, err := pool.New(c, reg, pool.Config{Seed: 21})
		if err != nil {
			return err
		}
		if err := wl.Seed(p, c.Rank()); err != nil {
			return err
		}
		if err := p.Run(); err != nil {
			return err
		}
		stolen[c.Rank()] = p.Stats().TasksStolen
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, s := range stolen {
		total += s
	}
	if total == 0 {
		t.Error("no tasks were ever stolen in a BPC run")
	}
	if wl.Producers() != uint64(params.Depth) {
		t.Errorf("producers = %d, want %d", wl.Producers(), params.Depth)
	}
}
