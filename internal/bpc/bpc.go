// Package bpc implements the Bouncing Producer-Consumer benchmark
// (Dinan et al. 2009, the paper's [11]) used as the first evaluation
// workload (§5.2.1).
//
// BPC stresses a load balancer's ability to *locate and disperse* work: a
// producer task spawns NConsumers consumer tasks plus, while depth
// remains, one successor producer. The producer is deliberately spawned
// FIRST, which places it at the tail end of the split queue — the first
// position thieves claim — so the producer "bounces" between processes,
// dragging the work source around the machine. Consumers simulate fixed
// task durations by spinning.
//
// The paper's configuration (8,192 consumers per producer, depth 500,
// 5 ms consumer / 1 ms producer tasks) runs on 2,112 cores; the defaults
// here scale the counts and durations to laptop budgets while preserving
// the producer:consumer structure and task-time ratio (DESIGN.md §2).
package bpc

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"sws/internal/pool"
	"sws/internal/task"
)

// Params configures a BPC run.
type Params struct {
	// Depth is the length of the producer chain.
	Depth int
	// NConsumers is the number of consumer tasks per producer.
	NConsumers int
	// ConsumerWork is the simulated duration of one consumer task
	// (paper: 5 ms).
	ConsumerWork time.Duration
	// ProducerWork is the simulated duration of one producer task
	// (paper: 1 ms).
	ProducerWork time.Duration
}

// Default returns a laptop-scale configuration preserving the paper's
// 5:1 consumer:producer task-time ratio.
func Default() Params {
	return Params{Depth: 64, NConsumers: 512, ConsumerWork: 200 * time.Microsecond, ProducerWork: 40 * time.Microsecond}
}

// Paper returns the paper's §5.2.1 configuration (minutes of CPU time;
// intended for large runs only).
func Paper() Params {
	return Params{Depth: 500, NConsumers: 8192, ConsumerWork: 5 * time.Millisecond, ProducerWork: time.Millisecond}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Depth < 1 {
		return fmt.Errorf("bpc: depth %d < 1", p.Depth)
	}
	if p.NConsumers < 0 {
		return fmt.Errorf("bpc: negative consumer count %d", p.NConsumers)
	}
	if p.ConsumerWork < 0 || p.ProducerWork < 0 {
		return fmt.Errorf("bpc: negative task duration")
	}
	return nil
}

// TotalTasks returns the number of tasks a run executes: Depth producers
// and Depth*NConsumers consumers.
func (p Params) TotalTasks() uint64 {
	return uint64(p.Depth) * uint64(p.NConsumers+1)
}

func (p Params) String() string {
	return fmt.Sprintf("bpc(depth=%d n=%d tc=%v tp=%v)", p.Depth, p.NConsumers, p.ConsumerWork, p.ProducerWork)
}

// Workload wires BPC into a task pool.
type Workload struct {
	Params Params

	// Handles are set by Register; PEs in one process share the Workload
	// and register concurrently, so access is atomic. Values are
	// deterministic (same registry order on every PE).
	producerH  atomic.Uint32
	consumerH  atomic.Uint32
	registered atomic.Bool

	producers atomic.Uint64
	consumers atomic.Uint64
}

// NewWorkload validates the parameters and returns a workload.
func NewWorkload(p Params) (*Workload, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Workload{Params: p}, nil
}

// Register installs the producer and consumer tasks (SPMD: same order on
// every PE).
func (w *Workload) Register(reg *pool.Registry) error {
	ph, err := reg.Register("bpc.producer", w.runProducer)
	if err != nil {
		return err
	}
	ch, err := reg.Register("bpc.consumer", w.runConsumer)
	if err != nil {
		return err
	}
	if w.registered.Load() &&
		(task.Handle(w.producerH.Load()) != ph || task.Handle(w.consumerH.Load()) != ch) {
		return errors.New("bpc: inconsistent registration order across PEs")
	}
	w.producerH.Store(uint32(ph))
	w.consumerH.Store(uint32(ch))
	w.registered.Store(true)
	return nil
}

// Seed enqueues the first producer on rank 0.
func (w *Workload) Seed(p *pool.Pool, rank int) error {
	if !w.registered.Load() {
		return errors.New("bpc: workload not registered")
	}
	if rank != 0 {
		return nil
	}
	return p.Add(task.Handle(w.producerH.Load()), task.Args(uint64(w.Params.Depth)))
}

func (w *Workload) runProducer(tc *pool.TaskCtx, payload []byte) error {
	args, err := task.ParseArgs(payload, 1)
	if err != nil {
		return err
	}
	depth := args[0]
	if depth == 0 {
		return errors.New("bpc: producer with zero depth")
	}
	// Spawn the successor producer FIRST so it sits closest to the tail
	// of the shared portion: thieves claim it before the consumers, which
	// is what makes the producer bounce (§5.2.1).
	if depth > 1 {
		if err := tc.Spawn(task.Handle(w.producerH.Load()), task.Args(depth-1)); err != nil {
			return err
		}
	}
	ch := task.Handle(w.consumerH.Load())
	for i := 0; i < w.Params.NConsumers; i++ {
		if err := tc.Spawn(ch, nil); err != nil {
			return err
		}
	}
	spin(w.Params.ProducerWork)
	w.producers.Add(1)
	return nil
}

func (w *Workload) runConsumer(tc *pool.TaskCtx, payload []byte) error {
	spin(w.Params.ConsumerWork)
	w.consumers.Add(1)
	return nil
}

// Bind installs externally registered producer/consumer handles, for
// runtimes that register delegating task functions once at fleet warmup
// and retarget them at a fresh per-job Workload.
func (w *Workload) Bind(producer, consumer task.Handle) {
	w.producerH.Store(uint32(producer))
	w.consumerH.Store(uint32(consumer))
	w.registered.Store(true)
}

// RunProducer executes one producer task against this workload — the
// body Register installs, exported for delegating dispatchers.
func (w *Workload) RunProducer(tc *pool.TaskCtx, payload []byte) error {
	return w.runProducer(tc, payload)
}

// RunConsumer executes one consumer task against this workload — the
// body Register installs, exported for delegating dispatchers.
func (w *Workload) RunConsumer(tc *pool.TaskCtx, payload []byte) error {
	return w.runConsumer(tc, payload)
}

// Producers returns the number of producer tasks executed in-process.
func (w *Workload) Producers() uint64 { return w.producers.Load() }

// Consumers returns the number of consumer tasks executed in-process.
func (w *Workload) Consumers() uint64 { return w.consumers.Load() }

// spin simulates d of task computation. Sub-scheduler-quantum durations
// must busy-wait (a sleep would round up and distort the task-time
// ratio); the loop stays preemptible.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
		runtime.Gosched()
	}
}
