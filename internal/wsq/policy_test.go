package wsq

import (
	"testing"
	"testing/quick"
)

func TestPolicyStrings(t *testing.T) {
	if StealHalfPolicy.String() != "steal-half" ||
		StealOnePolicy.String() != "steal-one" ||
		StealAllPolicy.String() != "steal-all" {
		t.Error("policy strings wrong")
	}
	if Policy(42).String() == "" {
		t.Error("unknown policy string empty")
	}
}

func TestStealOnePlan(t *testing.T) {
	p := StealOnePolicy
	if p.PlanLen(5) != 5 {
		t.Errorf("PlanLen(5) = %d", p.PlanLen(5))
	}
	for i := 0; i < 5; i++ {
		if p.Block(5, i) != 1 || p.Offset(5, i) != i {
			t.Errorf("attempt %d: block=%d offset=%d", i, p.Block(5, i), p.Offset(5, i))
		}
	}
	if p.Block(5, 5) != 0 || p.Offset(5, 6) != 5 {
		t.Error("exhaustion wrong")
	}
}

func TestStealAllPlan(t *testing.T) {
	p := StealAllPolicy
	if p.PlanLen(7) != 1 || p.PlanLen(0) != 0 {
		t.Error("PlanLen wrong")
	}
	if p.Block(7, 0) != 7 || p.Offset(7, 0) != 0 {
		t.Error("first attempt wrong")
	}
	if p.Block(7, 1) != 0 || p.Offset(7, 1) != 7 {
		t.Error("second attempt wrong")
	}
}

// Property: for every policy, the plan partitions the block exactly.
func TestPolicyPartitionProperty(t *testing.T) {
	for _, p := range []Policy{StealHalfPolicy, StealOnePolicy, StealAllPolicy} {
		p := p
		f := func(n16 uint16) bool {
			n := int(n16 % 2048)
			total := 0
			for i := 0; ; i++ {
				k := p.Block(n, i)
				if k == 0 {
					return total == n && i == p.PlanLen(n) && p.Offset(n, i) == n
				}
				if k < 0 || p.Offset(n, i) != total {
					return false
				}
				total += k
				if i > n+1 {
					return false
				}
			}
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

// MaxBlock must guarantee PlanLen(MaxBlock(slots)) <= slots.
func TestMaxBlockBound(t *testing.T) {
	for _, p := range []Policy{StealHalfPolicy, StealOnePolicy, StealAllPolicy} {
		for _, slots := range []int{1, 2, 8, 32, 512} {
			mb := p.MaxBlock(slots)
			if mb < 1 {
				t.Errorf("%v slots=%d: MaxBlock=%d", p, slots, mb)
				continue
			}
			// Clamp huge bounds to something checkable.
			n := mb
			if n > 1<<20 {
				n = 1 << 20
			}
			if got := p.PlanLen(n); got > slots {
				t.Errorf("%v slots=%d: PlanLen(MaxBlock=%d) = %d > %d", p, slots, mb, got, slots)
			}
		}
	}
}
