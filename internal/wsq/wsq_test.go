package wsq

import (
	"testing"
	"testing/quick"
)

// The paper's worked example (§4): 150 initial tasks yield the steal
// sequence {75,37,19,9,5,2,1,1,1}.
func TestStealHalfPaperExample(t *testing.T) {
	want := []int{75, 37, 19, 9, 5, 2, 1, 1, 1}
	for i, w := range want {
		if got := StealHalf(150, i); got != w {
			t.Errorf("StealHalf(150, %d) = %d, want %d", i, got, w)
		}
	}
	if got := StealHalf(150, len(want)); got != 0 {
		t.Errorf("StealHalf(150, 9) = %d, want 0 (exhausted)", got)
	}
	if got := PlanLen(150); got != 9 {
		t.Errorf("PlanLen(150) = %d, want 9", got)
	}
}

// The paper's example continues: after 2 steals the next block starts at
// offset 75+37=112 and takes 19 tasks.
func TestStealOffsetPaperExample(t *testing.T) {
	if got := StealOffset(150, 2); got != 112 {
		t.Errorf("StealOffset(150, 2) = %d, want 112", got)
	}
	if got := StealOffset(150, 0); got != 0 {
		t.Errorf("StealOffset(150, 0) = %d, want 0", got)
	}
	if got := StealOffset(150, 9); got != 150 {
		t.Errorf("StealOffset(150, 9) = %d, want 150", got)
	}
}

func TestStealHalfEdges(t *testing.T) {
	if got := StealHalf(0, 0); got != 0 {
		t.Errorf("StealHalf(0,0) = %d", got)
	}
	if got := StealHalf(1, 0); got != 1 {
		t.Errorf("StealHalf(1,0) = %d, want 1", got)
	}
	if got := StealHalf(2, 0); got != 1 {
		t.Errorf("StealHalf(2,0) = %d, want 1", got)
	}
	if got := StealHalf(2, 1); got != 1 {
		t.Errorf("StealHalf(2,1) = %d, want 1", got)
	}
	if got := PlanLen(0); got != 0 {
		t.Errorf("PlanLen(0) = %d", got)
	}
	if got := PlanLen(1); got != 1 {
		t.Errorf("PlanLen(1) = %d", got)
	}
}

// Property: the steal plan partitions the block exactly — sizes are
// positive, sum to n, and offsets telescope.
func TestStealPlanPartitionProperty(t *testing.T) {
	f := func(n16 uint16) bool {
		n := int(n16)
		total := 0
		for i := 0; ; i++ {
			k := StealHalf(n, i)
			if k == 0 {
				return total == n && i == PlanLen(n) && StealOffset(n, i) == n
			}
			if k < 0 || StealOffset(n, i) != total {
				return false
			}
			total += k
			if i > MaxPlanLen {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: each steal takes at most half the remainder (rounded down,
// except the final single task), so the plan is geometric.
func TestStealHalfNeverExceedsHalf(t *testing.T) {
	f := func(n16 uint16) bool {
		n := int(n16)
		r := n
		for i := 0; r > 0; i++ {
			k := StealHalf(n, i)
			if r > 1 && k > r/2 {
				return false
			}
			if r == 1 && k != 1 {
				return false
			}
			r -= k
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// MaxPlanLen must bound PlanLen for the largest advertisable block
// (19-bit itasks).
func TestMaxPlanLenBound(t *testing.T) {
	if got := PlanLen(1 << 19); got > MaxPlanLen {
		t.Errorf("PlanLen(2^19) = %d exceeds MaxPlanLen %d", got, MaxPlanLen)
	}
	// And is tight-ish: within 2x.
	if got := PlanLen(1 << 19); got < MaxPlanLen/2 {
		t.Logf("PlanLen(2^19) = %d (bound %d)", got, MaxPlanLen)
	}
}

func TestOutcomeString(t *testing.T) {
	if Stolen.String() != "stolen" || Empty.String() != "empty" || Disabled.String() != "disabled" {
		t.Error("Outcome strings wrong")
	}
	if Outcome(99).String() == "" {
		t.Error("unknown outcome has empty string")
	}
}
