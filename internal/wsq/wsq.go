// Package wsq defines the common contract for the two work-stealing task
// queues in this repository (the SDC baseline in internal/sdc and the SWS
// queue in internal/core), plus the steal-half arithmetic they share.
//
// Keeping the contract in a leaf package lets the pool runtime drive
// either protocol, and lets the benchmarks swap protocols with a flag —
// exactly the comparison the paper's evaluation performs.
package wsq

import (
	"fmt"
	"sync/atomic"

	"sws/internal/task"
)

// Outcome classifies a steal attempt.
type Outcome int

const (
	// Stolen: tasks were claimed and copied.
	Stolen Outcome = iota
	// Empty: the victim advertised no stealable work.
	Empty
	// Disabled: the victim's queue was locked/disabled (SWS: invalid
	// stealval; SDC: lock contention exceeded the abort threshold).
	Disabled
)

func (o Outcome) String() string {
	switch o {
	case Stolen:
		return "stolen"
	case Empty:
		return "empty"
	case Disabled:
		return "disabled"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Queue is one PE's view of its own task queue plus the ability to steal
// from any peer's symmetric queue.
//
// # Owner-serialization contract
//
// Owner methods (Push, Pop, Release, Acquire, Progress, and the read-side
// LocalCount/SharedAvail) must be serialized: at most one goroutine may be
// inside an owner method at a time, and successive calls must be ordered
// by happens-before edges. In the classic one-goroutine-per-PE runtime
// this holds trivially; a multi-worker PE must designate one owner worker
// to perform all owner ops (the implementations keep owner-private state —
// split points, epoch counters, steal plans — in plain fields on the
// strength of this contract). Steal is initiator-side, touches only the
// victim's symmetric heap through one-sided atomics, and may be called
// concurrently with the victim's owner ops — that asymmetry is the whole
// point of the protocol. Callers can enforce (and document violations of)
// the contract with OwnerGuard.
//
// # Elastic queues
//
// An implementation may be elastic: instead of failing Push when full it
// may grow (reseat its ring into a larger region) or spill overflow to
// owner-local storage, and may shrink back when occupancy collapses. Any
// such resizing happens inside owner methods and must be invisible to
// concurrent thieves — a Steal racing a resize either claims from the old
// geometry (and the resize waits for its copy to drain) or observes the
// queue disabled and retries. Elastic implementations additionally expose
// the Elastic interface so runtimes can report capacity and spill depth.
type Queue interface {
	// Push enqueues a task at the head of the local portion.
	Push(d task.Desc) error
	// Pop dequeues the newest task from the local portion (LIFO). It
	// returns ok=false when the local portion is empty — callers then
	// Acquire or steal.
	Pop() (d task.Desc, ok bool, err error)
	// Release moves roughly half of the local tasks to the shared
	// portion. It reports the number of tasks exposed (0 if the shared
	// portion was not empty or there was nothing to move).
	Release() (int, error)
	// Acquire moves roughly half of the shared, unclaimed tasks back to
	// the local portion, reporting how many moved.
	Acquire() (int, error)
	// Progress reclaims queue space occupied by completed steals. Cheap;
	// called periodically by the runtime.
	Progress() error
	// Steal attempts to steal from victim's queue, returning the stolen
	// descriptors on success.
	Steal(victim int) ([]task.Desc, Outcome, error)
	// LocalCount returns the number of tasks in the local portion.
	LocalCount() int
	// SharedAvail returns the owner's view of unclaimed shared tasks.
	SharedAvail() int
}

// Elastic is the optional interface of queues whose capacity changes at
// runtime (see the Elastic queues section of the Queue contract). Both
// methods are owner-side reads under the owner-serialization contract.
type Elastic interface {
	// CapacityNow returns the ring capacity currently in use.
	CapacityNow() int
	// SpillDepth returns the number of overflow tasks currently parked
	// outside the ring (unreachable by thieves until unspilled).
	SpillDepth() int
}

// OwnerGuard detects violations of the owner-serialization contract: two
// goroutines concurrently inside owner methods of the same queue. Wrap
// each owner op in Enter:
//
//	defer guard.Enter("Push")()
//
// A violation panics with both op names — a scheduler bug, never a
// recoverable condition, since an interleaved owner op can corrupt the
// queue's owner-private state silently. The cost when uncontended is one
// CAS and one store per op. The zero value is ready to use.
type OwnerGuard struct {
	// cur is nil when no owner op is in flight; otherwise it names the op.
	cur atomic.Pointer[string]
}

// Enter marks the calling goroutine as the active owner and returns the
// function that releases the guard; it panics if another owner op is
// already in flight.
func (g *OwnerGuard) Enter(op string) func() {
	if !g.cur.CompareAndSwap(nil, &op) {
		other := "unknown"
		if p := g.cur.Load(); p != nil {
			other = *p
		}
		panic(fmt.Sprintf("wsq: owner-serialization violated: %s raced with %s (multi-worker PEs must route owner ops through the owner worker)", op, other))
	}
	return func() { g.cur.Store(nil) }
}

// Policy selects the volume a steal claims from a shared block. The
// paper uses steal-half throughout ("work stealing systems have been shown
// to perform best by stealing half of the available work", §2); StealOne
// and StealAll exist for the ablation benches.
//
// A policy defines a deterministic *plan* over a block of n tasks: attempt
// i (0-based) claims Block(n, i) tasks starting Offset(n, i) tasks past
// the block's tail. Determinism is what lets an SWS thief derive its claim
// purely from the fetched attempt counter.
type Policy int

const (
	// StealHalfPolicy takes max(1, remaining/2) per attempt (default).
	StealHalfPolicy Policy = iota
	// StealOnePolicy takes one task per attempt.
	StealOnePolicy
	// StealAllPolicy takes the whole block in the first attempt.
	StealAllPolicy
)

func (p Policy) String() string {
	switch p {
	case StealHalfPolicy:
		return "steal-half"
	case StealOnePolicy:
		return "steal-one"
	case StealAllPolicy:
		return "steal-all"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Block returns the size of steal attempt i (0-based) against a block
// that initially held n tasks, or 0 when the plan is exhausted. Under the
// default policy, n=150 yields {75,37,19,9,5,2,1,1,1} (§4's example).
func (p Policy) Block(n, i int) int {
	switch p {
	case StealOnePolicy:
		if i < n {
			return 1
		}
		return 0
	case StealAllPolicy:
		if i == 0 {
			return n
		}
		return 0
	default:
		r := n
		for ; i > 0 && r > 0; i-- {
			r -= half(r)
		}
		if r <= 0 {
			return 0
		}
		return half(r)
	}
}

// Offset returns the displacement from the block's tail at which attempt
// i begins: the total volume of attempts 0..i-1.
func (p Policy) Offset(n, i int) int {
	switch p {
	case StealOnePolicy:
		if i > n {
			return n
		}
		return i
	case StealAllPolicy:
		if i == 0 {
			return 0
		}
		return n
	default:
		r := n
		for ; i > 0 && r > 0; i-- {
			r -= half(r)
		}
		return n - r
	}
}

// PlanLen returns the number of attempts that exhaust a block of n tasks
// (9 for n=150 under steal-half).
func (p Policy) PlanLen(n int) int {
	switch p {
	case StealOnePolicy:
		return n
	case StealAllPolicy:
		if n > 0 {
			return 1
		}
		return 0
	default:
		count := 0
		for r := n; r > 0; r -= half(r) {
			count++
		}
		return count
	}
}

// MaxBlock bounds the largest advertisable block so that PlanLen(n) never
// exceeds the completion-array slot budget.
func (p Policy) MaxBlock(slots int) int {
	switch p {
	case StealOnePolicy:
		return slots
	case StealAllPolicy:
		return 1 << 30 // one slot is always enough
	default:
		// PlanLen grows logarithmically: find the largest n with
		// PlanLen(n) <= slots. Halving from 2^k takes ~k+2 attempts.
		n := 1
		for p.PlanLen(n*2) <= slots {
			n *= 2
			if n >= 1<<30 {
				break
			}
		}
		return n
	}
}

// StealHalf is Policy.Block under the paper's default policy, kept as a
// named function because it is the schedule the paper's example walks.
func StealHalf(n, i int) int { return StealHalfPolicy.Block(n, i) }

// StealOffset is Policy.Offset under the default policy.
func StealOffset(n, i int) int { return StealHalfPolicy.Offset(n, i) }

// PlanLen is Policy.PlanLen under the default policy.
func PlanLen(n int) int { return StealHalfPolicy.PlanLen(n) }

// MaxPlanLen is an upper bound on the default policy's PlanLen for any
// block size the queues can advertise (itasks is at most 19 bits).
// Halving from 2^19 reaches 1 in 19 steps; a handful of trailing 1-task
// steals follow. 32 leaves slack and keeps completion arrays small.
const MaxPlanLen = 32

func half(r int) int {
	if r == 1 {
		return 1
	}
	return r / 2
}
